// Package interval implements the paper's self-defining interval trace
// file format (§2.3) and its simple access API (§2.4). An interval file
// holds a header, a thread table, a marker-string table, and interval
// records partitioned into frames linked from doubly-linked frame
// directories, so that utilities can jump to any frame without reading
// the records before it. Records within a file are in ascending order of
// their end time (start + duration), the property the merge utility
// relies on.
//
// # Opening files
//
// Open (a path) and NewFile (an io.ReadSeeker) are the package's entry
// points, configured by functional options: WithVerifyChecksums
// controls the per-frame payload checksum pass, WithSalvage opens in
// best-effort recovery mode and reports what was recovered through its
// sink. The historical entry points remain as thin deprecated wrappers
// — ReadHeader(r) is NewFile(r) with no options, and OpenSalvage(path)
// is Open(path, WithSalvage(&res)) — so existing callers migrate
// mechanically or not at all.
//
// A File may be shared by concurrent readers when ConcurrentReads
// reports true (the underlying reader implements io.ReaderAt); Preload
// makes the directory chain resident so metadata operations are
// seek-free too. Close is idempotent and safe under concurrency;
// operations on a closed file fail with ErrClosed. Long-running callers
// cancel work mid-scan through MapOptions.Context, ScanWindowCtx, or
// Scanner.SetContext — cancellation is checked at frame granularity.
package interval

import (
	"encoding/binary"
	"fmt"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/profile"
)

// Record is a decoded standard-profile interval record: the common
// fields of §2.3.2 plus the state type's extra fields (all unsigned
// 64-bit scalars, in events.ExtraFields order).
type Record struct {
	Type   events.Type
	Bebits profile.Bebits
	Start  clock.Time // start timestamp
	Dura   clock.Time // duration
	CPU    uint16     // processor ID
	Node   uint16     // node ID
	Thread uint16     // node-local logical thread ID
	Extra  []uint64
	// Vec is the state type's trailing vector field (flattened unsigned
	// 64-bit elements), present only for types where
	// events.VectorField(Type) is non-empty.
	Vec []uint64
}

// End returns the record's end time, the file's sort key.
func (r Record) End() clock.Time { return r.Start + r.Dura }

// Field returns the named extra field's value, consulting the state
// type's field table.
func (r Record) Field(name string) (uint64, bool) {
	for i, f := range events.ExtraFields(r.Type) {
		if f == name && i < len(r.Extra) {
			return r.Extra[i], true
		}
	}
	return 0, false
}

// String renders a compact human-readable form.
func (r Record) String() string {
	return fmt.Sprintf("%s/%s n%d c%d t%d [%v +%v]",
		r.Type.Name(), r.Bebits, r.Node, r.CPU, r.Thread, r.Start, r.Dura)
}

// Each interval record is preceded by a one-byte record length; a zero
// length escapes to a two-byte length for records over 255 bytes
// (paper §2.3.2), so readers can always find the next record without
// examining the current one in detail.

// AppendFramed appends payload with its length prefix.
func AppendFramed(dst, payload []byte) []byte {
	if len(payload) > 0xffff {
		panic(fmt.Sprintf("interval: record payload %d bytes exceeds format limit", len(payload)))
	}
	if len(payload) > 0 && len(payload) <= 255 {
		dst = append(dst, byte(len(payload)))
	} else {
		var b [2]byte
		binary.LittleEndian.PutUint16(b[:], uint16(len(payload)))
		dst = append(dst, 0, b[0], b[1])
	}
	return append(dst, payload...)
}

// NextFramed splits the first length-prefixed record payload from b,
// returning the payload and the total bytes consumed.
func NextFramed(b []byte) (payload []byte, n int, err error) {
	if len(b) < 1 {
		return nil, 0, fmt.Errorf("interval: empty buffer")
	}
	l := int(b[0])
	off := 1
	if l == 0 {
		if len(b) < 3 {
			return nil, 0, fmt.Errorf("interval: truncated extended length")
		}
		l = int(binary.LittleEndian.Uint16(b[1:3]))
		off = 3
	}
	if len(b) < off+l {
		return nil, 0, fmt.Errorf("interval: truncated record (want %d bytes)", l)
	}
	return b[off : off+l], off + l, nil
}

// AppendPayload appends r's standard-profile payload (no length prefix):
// the common fields, the scalar extras, and — for types declaring one —
// the trailing vector field (2-byte counter plus 8-byte elements).
func (r *Record) AppendPayload(dst []byte) []byte {
	var b [profile.CommonSize]byte
	binary.LittleEndian.PutUint16(b[0:], uint16(r.Type))
	b[2] = uint8(r.Bebits)
	binary.LittleEndian.PutUint64(b[3:], uint64(r.Start))
	binary.LittleEndian.PutUint64(b[11:], uint64(r.Dura))
	binary.LittleEndian.PutUint16(b[19:], r.CPU)
	binary.LittleEndian.PutUint16(b[21:], r.Node)
	binary.LittleEndian.PutUint16(b[23:], r.Thread)
	dst = append(dst, b[:]...)
	var w [8]byte
	for _, e := range r.Extra {
		binary.LittleEndian.PutUint64(w[:], e)
		dst = append(dst, w[:]...)
	}
	if events.VectorField(r.Type) != "" {
		binary.LittleEndian.PutUint16(w[:2], uint16(len(r.Vec)))
		dst = append(dst, w[:2]...)
		for _, e := range r.Vec {
			binary.LittleEndian.PutUint64(w[:], e)
			dst = append(dst, w[:]...)
		}
	}
	return dst
}

// Append appends r with its length prefix.
func (r *Record) Append(dst []byte) []byte {
	return AppendFramed(dst, r.AppendPayload(nil))
}

// EncodedSize returns the framed size of r.
func (r *Record) EncodedSize() int {
	n := profile.CommonSize + 8*len(r.Extra)
	if events.VectorField(r.Type) != "" {
		n += 2 + 8*len(r.Vec)
	}
	if n > 0 && n <= 255 {
		return 1 + n
	}
	return 3 + n
}

// DecodePayload parses a standard-profile record payload into a fresh
// Record.
func DecodePayload(payload []byte) (Record, error) {
	var r Record
	err := DecodePayloadInto(payload, &r)
	return r, err
}

// DecodePayloadInto parses a standard-profile record payload into *r,
// reusing r's Extra and Vec capacity when possible, so hot decode loops
// (the Scanner, the merge read-ahead stage) avoid one allocation per
// record. Zero-length Extra/Vec are set to nil, matching DecodePayload.
func DecodePayloadInto(payload []byte, r *Record) error {
	return decodePayload(payload, r, nil)
}

// decodePayload is DecodePayloadInto with a pluggable allocation
// policy: a nil arena reuses r's capacity (records overwritten by the
// next decode), a non-nil arena carves fresh capacity-clamped blocks
// (records that escape the decode loop, one allocation per chunk).
func decodePayload(payload []byte, r *Record, a *u64Arena) error {
	if len(payload) < profile.CommonSize {
		return fmt.Errorf("interval: payload %d bytes, need at least %d", len(payload), profile.CommonSize)
	}
	r.Type = events.Type(binary.LittleEndian.Uint16(payload[0:]))
	r.Bebits = profile.Bebits(payload[2])
	r.Start = clock.Time(binary.LittleEndian.Uint64(payload[3:]))
	r.Dura = clock.Time(binary.LittleEndian.Uint64(payload[11:]))
	r.CPU = binary.LittleEndian.Uint16(payload[19:])
	r.Node = binary.LittleEndian.Uint16(payload[21:])
	r.Thread = binary.LittleEndian.Uint16(payload[23:])
	r.Vec = nil
	rest := payload[profile.CommonSize:]
	if events.VectorField(r.Type) != "" {
		// Fixed scalar extras, then the counter-prefixed vector.
		nx := len(events.ExtraFields(r.Type))
		if len(rest) < 8*nx+2 {
			return fmt.Errorf("interval: %s record too short for %d extras + vector counter", r.Type.Name(), nx)
		}
		r.Extra = allocU64(r.Extra, nx, a)
		for i := range r.Extra {
			r.Extra[i] = binary.LittleEndian.Uint64(rest[8*i:])
		}
		rest = rest[8*nx:]
		n := int(binary.LittleEndian.Uint16(rest))
		rest = rest[2:]
		if len(rest) != 8*n {
			return fmt.Errorf("interval: vector claims %d elements, %d bytes follow", n, len(rest))
		}
		if n > 0 {
			r.Vec = allocU64(nil, n, a)
			for i := range r.Vec {
				r.Vec[i] = binary.LittleEndian.Uint64(rest[8*i:])
			}
		}
		return nil
	}
	if len(rest)%8 != 0 {
		return fmt.Errorf("interval: %d trailing bytes not a whole number of extras", len(rest))
	}
	if len(rest) > 0 {
		r.Extra = allocU64(r.Extra, len(rest)/8, a)
		for i := range r.Extra {
			r.Extra[i] = binary.LittleEndian.Uint64(rest[8*i:])
		}
	} else {
		r.Extra = nil
	}
	return nil
}

// allocU64 returns an n-element slice: from the arena when one is
// supplied, otherwise reusing b's capacity. n == 0 yields nil either
// way, matching DecodePayload.
func allocU64(b []uint64, n int, a *u64Arena) []uint64 {
	if n == 0 {
		return nil
	}
	if a != nil {
		return a.alloc(n)
	}
	return growU64(b, n)
}

// growU64 returns b resized to n elements, reusing its capacity.
func growU64(b []uint64, n int) []uint64 {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]uint64, n)
}
