package interval

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/faultfs"
	"tracefw/internal/profile"
	"tracefw/internal/xrand"
)

// writePyrFile is writeRandomFile with a type mix that exercises every
// pyramid code path: busy MPI/IO states, the non-busy Running background
// and GlobalClock records, markers, zero-duration records, and exact
// duplicate tuples (the distinct-top-k dedup case).
func writePyrFile(t *testing.T, seed uint64, n int, hdrVersion uint32) (*SeekBuffer, []Record) {
	t.Helper()
	rng := xrand.New(seed)
	types := []events.Type{
		events.EvRunning, events.EvRunning, events.EvGlobalClock,
		events.EvMarkerState, events.EvMPISend, events.EvMPIRecv,
		events.EvMPIAllreduce, events.EvMPIBarrier, events.EvIORead,
	}
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		r := Record{
			Type:   types[rng.Intn(len(types))],
			Bebits: profile.Complete,
			Start:  clock.Time(rng.Int63n(int64(100 * clock.Millisecond))),
			Dura:   clock.Time(rng.Int63n(int64(5 * clock.Millisecond))),
			CPU:    uint16(rng.Intn(4)),
			Node:   uint16(rng.Intn(2)),
			Thread: uint16(rng.Intn(8)),
			Extra:  []uint64{rng.Uint64() % 1000, 7, uint64(i), 0, 0, 0},
		}
		if rng.Intn(10) == 0 {
			r.Dura = 0
		}
		recs = append(recs, r)
		if rng.Intn(16) == 0 {
			recs = append(recs, r) // identical tuple
			i++
		}
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].End() < recs[j].End() })
	hdr := testHeader()
	hdr.HeaderVersion = hdrVersion
	sb := NewSeekBuffer()
	w, err := NewWriter(sb, hdr, WriterOptions{FrameBytes: 512, FramesPerDir: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Add(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return sb, recs
}

func buildAttached(t *testing.T, f *File, opts PyramidOptions) *Pyramid {
	t.Helper()
	p, err := BuildPyramid(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	f.AttachPyramid(p)
	return p
}

// stripMeta zeroes the fields the two engines legitimately differ on.
func stripMeta(ws *WindowSummary) WindowSummary {
	c := *ws
	c.Engine, c.CellsUsed, c.FramesDecoded = "", 0, 0
	return c
}

func assertSummariesEqual(t *testing.T, label string, pyr, scan *WindowSummary) {
	t.Helper()
	p, s := stripMeta(pyr), stripMeta(scan)
	if reflect.DeepEqual(p, s) {
		return
	}
	if len(p.Bins) == len(s.Bins) {
		for i := range p.Bins {
			if !reflect.DeepEqual(p.Bins[i], s.Bins[i]) {
				t.Errorf("%s: bin %d differs:\n  pyramid %+v\n  scan    %+v", label, i, p.Bins[i], s.Bins[i])
			}
		}
	}
	if !reflect.DeepEqual(p.Lanes, s.Lanes) {
		t.Errorf("%s: lanes differ: pyramid %v scan %v", label, p.Lanes, s.Lanes)
	}
	if !reflect.DeepEqual(p.Top, s.Top) {
		t.Errorf("%s: top differs:\n  pyramid %v\n  scan    %v", label, p.Top, s.Top)
	}
	t.Fatalf("%s: pyramid and scan summaries differ", label)
}

func TestPyramidEncodeDecodeRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 50, 1200} {
		sb, _ := writePyrFile(t, uint64(n)+3, n, CurrentHeaderVersion)
		f := openFile(t, sb)
		p, err := BuildPyramid(f, PyramidOptions{BaseCells: 64, TopK: 4})
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodePyramid(p.Encode())
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("n=%d: roundtrip mismatch\n got %+v\nwant %+v", n, got, p)
		}
	}
}

func TestPyramidLevelGeometry(t *testing.T) {
	sb, _ := writePyrFile(t, 11, 2000, CurrentHeaderVersion)
	f := openFile(t, sb)
	p, err := BuildPyramid(f, PyramidOptions{BaseCells: 256, TopK: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Levels) < 2 {
		t.Fatalf("want a multi-level pyramid, got %d levels", len(p.Levels))
	}
	for i, lvl := range p.Levels {
		if want := p.BaseWidth << uint(i); lvl.Width != want {
			t.Fatalf("level %d width %d, want %d", i, lvl.Width, want)
		}
		if i > 0 {
			child := p.Levels[i-1]
			if lvl.First != child.First>>1 {
				t.Fatalf("level %d first %d, child first %d", i, lvl.First, child.First)
			}
		}
	}
	if top := p.Levels[len(p.Levels)-1]; len(top.Cells) != 1 {
		t.Fatalf("top level has %d cells, want 1", len(top.Cells))
	}
}

// TestSummarizeDifferential is the byte-identity suite: the pyramid
// engine must answer exactly what the scan engine answers, for every
// header version (v1-v4 pyramids are backfilled by a scan build), over
// a grid of aligned, unaligned, interior, and overhanging windows and
// bin counts.
func TestSummarizeDifferential(t *testing.T) {
	for hv := uint32(1); hv <= CurrentHeaderVersion; hv++ {
		hv := hv
		t.Run(fmt.Sprintf("v%d", hv), func(t *testing.T) {
			for _, seed := range []uint64{1, 7, 42} {
				sb, _ := writePyrFile(t, seed, 1500, hv)
				f := openFile(t, sb)
				buildAttached(t, f, PyramidOptions{BaseCells: 128, TopK: 8})
				first, last, _, err := f.Stats()
				if err != nil {
					t.Fatal(err)
				}
				span := last - first
				windows := []struct {
					name   string
					lo, hi clock.Time
				}{
					{"full", first, last},
					{"interior", first + span/3, first + 2*span/3},
					{"odd", first + 7, first + 2*span/3 + 13},
					{"left-overhang", first - span/2, first + span/2},
					{"right-overhang", first + span/2, last + span/2},
					{"outside", last + span, last + 2*span},
					{"prefix", first, first + span/7},
				}
				for _, win := range windows {
					for _, bins := range []int{1, 3, 7, 64, 250} {
						label := fmt.Sprintf("v%d/seed%d/%s/bins%d", hv, seed, win.name, bins)
						scan, err := f.SummarizeWindow(WindowSummaryOptions{
							Bins: bins, Lo: win.lo, Hi: win.hi, Engine: SummaryScan, TopK: 5,
						})
						if err != nil {
							t.Fatalf("%s: scan: %v", label, err)
						}
						pyr, err := f.SummarizeWindow(WindowSummaryOptions{
							Bins: bins, Lo: win.lo, Hi: win.hi, Engine: SummaryPyramid, TopK: 5,
						})
						if err != nil {
							t.Fatalf("%s: pyramid: %v", label, err)
						}
						if pyr.Engine != "pyramid" || scan.Engine != "scan" {
							t.Fatalf("%s: engines %q/%q", label, pyr.Engine, scan.Engine)
						}
						assertSummariesEqual(t, label, pyr, scan)

						// Auto must agree with both on a usable window.
						auto, err := f.SummarizeWindow(WindowSummaryOptions{
							Bins: bins, Lo: win.lo, Hi: win.hi, TopK: 5,
						})
						if err != nil {
							t.Fatalf("%s: auto: %v", label, err)
						}
						if auto.Engine != "pyramid" {
							t.Fatalf("%s: auto picked %q", label, auto.Engine)
						}
						assertSummariesEqual(t, label+"/auto", auto, scan)
					}
				}
			}
		})
	}
}

// TestSummarizeAlignedDecodesNoFrames pins the headline property: when
// the window and every bin bound land on base-cell boundaries, the
// pyramid engine answers without decoding a single frame — and still
// answers byte-identically.
func TestSummarizeAlignedDecodesNoFrames(t *testing.T) {
	sb, _ := writePyrFile(t, 5, 2500, CurrentHeaderVersion)
	f := openFile(t, sb)
	p := buildAttached(t, f, PyramidOptions{BaseCells: 512, TopK: 8})
	first, last, _, err := f.Stats()
	if err != nil {
		t.Fatal(err)
	}
	w := p.BaseWidth
	for _, bins := range []int{1, 4, 16, 100} {
		lo := clock.Time(floorDivTime(first, w)) * w
		per := (clock.Time(floorDivTime(last, w))*w + w - lo) / (clock.Time(bins) * w)
		hi := lo + clock.Time(bins)*w*(per+1)
		scan, err := f.SummarizeWindow(WindowSummaryOptions{Bins: bins, Lo: lo, Hi: hi, Engine: SummaryScan, TopK: 3})
		if err != nil {
			t.Fatal(err)
		}
		pyr, err := f.SummarizeWindow(WindowSummaryOptions{Bins: bins, Lo: lo, Hi: hi, Engine: SummaryPyramid, TopK: 3})
		if err != nil {
			t.Fatal(err)
		}
		if pyr.FramesDecoded != 0 {
			t.Fatalf("bins=%d: aligned window decoded %d frames, want 0", bins, pyr.FramesDecoded)
		}
		if pyr.CellsUsed == 0 {
			t.Fatalf("bins=%d: aligned window used no cells", bins)
		}
		if scan.FramesDecoded == 0 {
			t.Fatalf("bins=%d: scan reference decoded no frames (test is vacuous)", bins)
		}
		assertSummariesEqual(t, fmt.Sprintf("aligned/bins%d", bins), pyr, scan)
	}
}

func TestSummarizeDegenerateWindowFallsBack(t *testing.T) {
	sb, _ := writePyrFile(t, 9, 400, CurrentHeaderVersion)
	f := openFile(t, sb)
	buildAttached(t, f, PyramidOptions{BaseCells: 64, TopK: 4})
	first, _, _, err := f.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Window narrower than the bin count: some buckets are empty and
	// their boundary semantics are not reproducible from ranges.
	o := WindowSummaryOptions{Bins: 50, Lo: first, Hi: first + 10, TopK: 2}
	auto, err := f.SummarizeWindow(o)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Engine != "scan" {
		t.Fatalf("degenerate window answered by %q, want scan fallback", auto.Engine)
	}
	o.Engine = SummaryPyramid
	if _, err := f.SummarizeWindow(o); err == nil {
		t.Fatal("forced pyramid engine accepted a degenerate window")
	}
	// Zero-span window, one bin: still answerable by scan.
	zero, err := f.SummarizeWindow(WindowSummaryOptions{Bins: 1, Lo: first + 5, Hi: first + 5, Engine: SummaryScan})
	if err != nil {
		t.Fatal(err)
	}
	if len(zero.Bins) != 1 {
		t.Fatalf("zero-span window got %d bins", len(zero.Bins))
	}
}

func TestSummarizeValidation(t *testing.T) {
	sb, _ := writePyrFile(t, 2, 100, CurrentHeaderVersion)
	f := openFile(t, sb)
	if _, err := f.SummarizeWindow(WindowSummaryOptions{Bins: 0, Lo: 0, Hi: 10}); err == nil {
		t.Fatal("accepted 0 bins")
	}
	if _, err := f.SummarizeWindow(WindowSummaryOptions{Bins: 1, Lo: 10, Hi: 0}); err == nil {
		t.Fatal("accepted inverted window")
	}
	if _, err := f.SummarizeWindow(WindowSummaryOptions{Bins: 1, Lo: 0, Hi: 10, TopK: -1}); err == nil {
		t.Fatal("accepted negative top-k")
	}
	if _, err := f.SummarizeWindow(WindowSummaryOptions{Bins: 1, Lo: 0, Hi: 10, Engine: SummaryPyramid}); err == nil {
		t.Fatal("forced pyramid engine answered with no pyramid attached")
	}
	p := buildAttached(t, f, PyramidOptions{TopK: 4})
	if _, err := f.SummarizeWindow(WindowSummaryOptions{Bins: 1, Lo: 0, Hi: 1 << 20, Engine: SummaryPyramid, TopK: p.TopK + 1}); err == nil {
		t.Fatal("forced pyramid engine accepted top-k beyond the stored k")
	}
	ws, err := f.SummarizeWindow(WindowSummaryOptions{Bins: 1, Lo: 0, Hi: 1 << 20, TopK: p.TopK + 1})
	if err != nil {
		t.Fatal(err)
	}
	if ws.Engine != "scan" {
		t.Fatalf("auto engine %q for over-long top-k, want scan", ws.Engine)
	}
}

func TestPyramidEmptyFile(t *testing.T) {
	sb := writeTestFile(t, 0, WriterOptions{})
	f := openFile(t, sb)
	p := buildAttached(t, f, PyramidOptions{})
	if len(p.Levels) != 0 {
		t.Fatalf("empty file built %d levels", len(p.Levels))
	}
	ws, err := f.SummarizeWindow(WindowSummaryOptions{Bins: 4, Lo: 0, Hi: 100})
	if err != nil {
		t.Fatal(err)
	}
	if ws.Engine != "scan" {
		t.Fatalf("empty pyramid answered %q, want scan fallback", ws.Engine)
	}
}

// writeTraceOnDisk materializes a generated trace as a real file so the
// sidecar paths (Open auto-load, staleness, fault injection) apply.
func writeTraceOnDisk(t *testing.T, dir string, seed uint64, n int, hv uint32) string {
	t.Helper()
	sb, _ := writePyrFile(t, seed, n, hv)
	path := filepath.Join(dir, fmt.Sprintf("trace-%d-v%d.ute", seed, hv))
	if err := os.WriteFile(path, sb.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenAutoLoadsSidecar(t *testing.T) {
	dir := t.TempDir()
	path := writeTraceOnDisk(t, dir, 4, 600, CurrentHeaderVersion)
	if _, err := BuildPyramidSidecar(path, PyramidOptions{BaseCells: 64, TopK: 4}); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Pyramid() == nil {
		t.Fatal("Open did not attach the sidecar pyramid")
	}
	f2, err := Open(path, WithPyramid(false))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.Pyramid() != nil {
		t.Fatal("WithPyramid(false) still attached the sidecar")
	}
}

func TestPyramidStaleSidecarIgnored(t *testing.T) {
	dir := t.TempDir()
	path := writeTraceOnDisk(t, dir, 4, 600, CurrentHeaderVersion)
	if _, err := BuildPyramidSidecar(path, PyramidOptions{BaseCells: 64, TopK: 4}); err != nil {
		t.Fatal(err)
	}
	// Rewrite the trace with different contents; the sidecar is now
	// stale and must not be trusted.
	sb, _ := writePyrFile(t, 77, 900, CurrentHeaderVersion)
	if err := os.WriteFile(path, sb.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatalf("stale sidecar prevented opening: %v", err)
	}
	defer f.Close()
	if f.Pyramid() != nil {
		t.Fatal("stale sidecar was attached")
	}
	if _, err := LoadPyramid(PyramidPath(path), f); err == nil {
		t.Fatal("LoadPyramid accepted a stale sidecar")
	}
}

// TestPyramidSidecarFaults is the advisory-sidecar property proof: for
// seeded truncations, bit flips, and torn (zeroed) ranges anywhere in
// the sidecar, Open always succeeds, and the answers the file gives are
// byte-identical to the scan engine's — either the damage is caught and
// the pyramid is dropped, or (for faults in slack the decoder proves
// harmless) the attached pyramid still answers exactly.
func TestPyramidSidecarFaults(t *testing.T) {
	dir := t.TempDir()
	path := writeTraceOnDisk(t, dir, 21, 1000, CurrentHeaderVersion)
	if _, err := BuildPyramidSidecar(path, PyramidOptions{BaseCells: 128, TopK: 4}); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(PyramidPath(path))
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 40; seed++ {
		in := faultfs.New(seed)
		data := append([]byte(nil), pristine...)
		var fault faultfs.Fault
		switch seed % 3 {
		case 0:
			data, fault = in.Truncate(data, 0)
		case 1:
			data, fault = in.FlipBit(data, 0)
		default:
			data, fault = in.TearZero(data, 0, 64)
		}
		checkDamagedSidecar(t, path, data, fmt.Sprintf("seed%d/%v", seed, fault))
	}
	// Boundary cases the random faults may miss.
	checkDamagedSidecar(t, path, nil, "empty sidecar")
	checkDamagedSidecar(t, path, pristine[:7], "sub-magic sidecar")
	if err := os.Remove(PyramidPath(path)); err != nil {
		t.Fatal(err)
	}
	checkDamagedSidecar(t, path, nil, "missing sidecar")
}

func checkDamagedSidecar(t *testing.T, path string, sidecar []byte, label string) {
	t.Helper()
	if sidecar != nil {
		if err := os.WriteFile(PyramidPath(path), sidecar, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	f, err := Open(path)
	if err != nil {
		t.Fatalf("%s: damaged sidecar prevented opening: %v", label, err)
	}
	defer f.Close()
	first, last, _, err := f.Stats()
	if err != nil {
		t.Fatal(err)
	}
	span := last - first
	for _, bins := range []int{1, 16} {
		auto, err := f.SummarizeWindow(WindowSummaryOptions{Bins: bins, Lo: first + span/5, Hi: last - span/5, TopK: 3})
		if err != nil {
			t.Fatalf("%s: auto query failed: %v", label, err)
		}
		scan, err := f.SummarizeWindow(WindowSummaryOptions{Bins: bins, Lo: first + span/5, Hi: last - span/5, Engine: SummaryScan, TopK: 3})
		if err != nil {
			t.Fatalf("%s: scan query failed: %v", label, err)
		}
		assertSummariesEqual(t, label, auto, scan)
	}
}

// TestSummarizeScanMatchesDirect cross-checks the scan engine itself
// against a from-records reference on the raw record slice, so the
// differential suite is anchored to something other than the code under
// test.
func TestSummarizeScanRecordCounts(t *testing.T) {
	sb, recs := writePyrFile(t, 13, 800, CurrentHeaderVersion)
	f := openFile(t, sb)
	first, last, _, err := f.Stats()
	if err != nil {
		t.Fatal(err)
	}
	ws, err := f.SummarizeWindow(WindowSummaryOptions{Bins: 9, Lo: first, Hi: last, Engine: SummaryScan})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i := range recs {
		if s := recs[i].Start; s >= first && s < last {
			want++
		}
	}
	var got int64
	for i := range ws.Bins {
		got += ws.Bins[i].Records
	}
	if got != want {
		t.Fatalf("scan counted %d records in window, raw records say %d", got, want)
	}
}
