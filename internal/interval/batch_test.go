package interval

import (
	"fmt"
	"sort"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/profile"
	"tracefw/internal/xrand"
)

// writeMixedFile builds a file whose records span the shapes the batch
// decoder must handle: no extras (Running), fixed extras of several
// widths, and the trailing vector of Waitall — across enough records to
// force multiple frames and directories.
func writeMixedFile(t *testing.T, seed uint64, n int, hdrVersion uint32) (*SeekBuffer, []Record) {
	t.Helper()
	rng := xrand.New(seed)
	recs := make([]Record, n)
	for i := range recs {
		r := Record{
			Bebits: profile.Complete,
			Start:  clock.Time(rng.Int63n(int64(100 * clock.Millisecond))),
			Dura:   clock.Time(rng.Int63n(int64(5 * clock.Millisecond))),
			CPU:    uint16(rng.Intn(4)),
			Node:   uint16(rng.Intn(2)),
			Thread: uint16(rng.Intn(8)),
		}
		switch rng.Intn(4) {
		case 0:
			r.Type = events.EvRunning
		case 1:
			r.Type = events.EvMPISend
			r.Extra = []uint64{rng.Uint64() % 1000, 7, uint64(i), 0, 1, rng.Uint64()}
		case 2:
			r.Type = events.EvMPIBarrier
			r.Extra = []uint64{1, rng.Uint64() % (1 << 40)}
		default:
			r.Type = events.EvMPIWaitall
			nv := rng.Intn(5)
			r.Extra = []uint64{uint64(nv), rng.Uint64()}
			r.Vec = make([]uint64, 3*nv)
			for j := range r.Vec {
				r.Vec[j] = rng.Uint64() % 100000
			}
		}
		recs[i] = r
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].End() < recs[j].End() })
	hdr := testHeader()
	hdr.HeaderVersion = hdrVersion
	sb := NewSeekBuffer()
	w, err := NewWriter(sb, hdr, WriterOptions{FrameBytes: 512, FramesPerDir: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Add(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return sb, recs
}

func eqRecord(a, b Record) bool {
	if a.Type != b.Type || a.Bebits != b.Bebits || a.Start != b.Start ||
		a.Dura != b.Dura || a.CPU != b.CPU || a.Node != b.Node || a.Thread != b.Thread {
		return false
	}
	if len(a.Extra) != len(b.Extra) || len(a.Vec) != len(b.Vec) {
		return false
	}
	for i := range a.Extra {
		if a.Extra[i] != b.Extra[i] {
			return false
		}
	}
	for i := range a.Vec {
		if a.Vec[i] != b.Vec[i] {
			return false
		}
	}
	return true
}

// TestBatchMatchesRecordDecode decodes every frame of every header
// version both ways — record materialization and columnar batch — and
// compares row by row, reusing one Batch throughout so stale column
// contents from previous frames would be caught.
func TestBatchMatchesRecordDecode(t *testing.T) {
	for v := uint32(1); v <= CurrentHeaderVersion; v++ {
		t.Run(fmt.Sprintf("v%d", v), func(t *testing.T) {
			sb, _ := writeMixedFile(t, 0xb0b0+uint64(v), 400, v)
			f, err := NewFile(NewSeekBufferFrom(sb.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			fes, err := f.Frames()
			if err != nil {
				t.Fatal(err)
			}
			if len(fes) < 4 {
				t.Fatalf("want a multi-frame file, got %d frames", len(fes))
			}
			var b Batch
			total := 0
			for _, fe := range fes {
				recs, err := f.DecodeFrame(fe)
				if err != nil {
					t.Fatal(err)
				}
				if err := f.DecodeFrameBatch(fe, &b); err != nil {
					t.Fatal(err)
				}
				if b.N != len(recs) {
					t.Fatalf("frame at %d: batch N=%d, records=%d", fe.Offset, b.N, len(recs))
				}
				for i, want := range recs {
					if got := b.Row(i); !eqRecord(got, want) {
						t.Fatalf("frame at %d row %d: batch %+v, record %+v", fe.Offset, i, got, want)
					}
					if got := b.RowCopy(i); !eqRecord(got, want) {
						t.Fatalf("frame at %d row %d: RowCopy %+v, record %+v", fe.Offset, i, got, want)
					}
					if want.End() != b.End(i) {
						t.Fatalf("frame at %d row %d: End mismatch", fe.Offset, i)
					}
				}
				total += b.N
			}
			if total != 400 {
				t.Fatalf("decoded %d records, wrote 400", total)
			}
		})
	}
}

// TestBatchEncodedRowSize checks the accumulation-format size estimate
// against the writer's framing: summing EncodedRowSize over a frame's
// rows must reproduce the record payload+prefix accounting the writer
// used to close that frame (frame assignment is based on it).
func TestBatchEncodedRowSize(t *testing.T) {
	sb, _ := writeMixedFile(t, 99, 200, CurrentHeaderVersion)
	f, err := NewFile(NewSeekBufferFrom(sb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fes, err := f.Frames()
	if err != nil {
		t.Fatal(err)
	}
	var b Batch
	for _, fe := range fes {
		if err := f.DecodeFrameBatch(fe, &b); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			r := b.Row(i)
			if got, want := b.EncodedRowSize(i), r.EncodedSize(); got != want {
				t.Fatalf("row %d (%v): EncodedRowSize=%d, want %d", i, r.Type, got, want)
			}
		}
	}
}

// TestMapFilesBatchesOrdering verifies the batch engine delivers frames
// in the same order and with the same contents as MapFilesFrames, at
// several worker counts.
func TestMapFilesBatchesOrdering(t *testing.T) {
	sb, _ := writeMixedFile(t, 7, 300, CurrentHeaderVersion)
	sb2, _ := writeMixedFile(t, 8, 150, CurrentHeaderVersion)
	var files []*File
	for _, s := range []*SeekBuffer{sb, sb2} {
		f, err := NewFile(NewSeekBufferFrom(s.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	render := func(parallel int, batched bool) string {
		var out []string
		add := func(file int, fe FrameEntry, sum uint64, n int) {
			out = append(out, fmt.Sprintf("%d/%d: n=%d sum=%d", file, fe.Offset, n, sum))
		}
		var err error
		if batched {
			err = MapFilesBatches(files, MapOptions{Parallel: parallel},
				func(file int, fe FrameEntry, b *Batch) (uint64, error) {
					var sum uint64
					for i := 0; i < b.N; i++ {
						sum += uint64(b.Start[i]) + uint64(b.Type[i])
						for _, e := range b.ExtraRow(i) {
							sum += e
						}
						for _, v := range b.VecRow(i) {
							sum += v
						}
					}
					return sum, nil
				},
				func(file int, fe FrameEntry, sum uint64) error {
					add(file, fe, sum, 0)
					return nil
				})
		} else {
			err = MapFilesFrames(files, MapOptions{Parallel: parallel},
				func(file int, fe FrameEntry, recs []Record) (uint64, error) {
					var sum uint64
					for _, r := range recs {
						sum += uint64(r.Start) + uint64(r.Type)
						for _, e := range r.Extra {
							sum += e
						}
						for _, v := range r.Vec {
							sum += v
						}
					}
					return sum, nil
				},
				func(file int, fe FrameEntry, sum uint64) error {
					add(file, fe, sum, 0)
					return nil
				})
		}
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(out)
	}
	want := render(1, false)
	for _, par := range []int{1, 2, 8} {
		if got := render(par, true); got != want {
			t.Fatalf("batched -j%d order/content differs:\n%s\nwant:\n%s", par, got, want)
		}
	}
}

// TestBatchDecodeZeroAlloc pins the warm-path allocation count: once a
// Batch's columns have grown to the largest frame, re-decoding frames
// into it must not allocate at all, on both the v4 varint path and the
// fixed-width path.
func TestBatchDecodeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; count is meaningless")
	}
	for _, v := range []uint32{3, CurrentHeaderVersion} {
		sb, _ := writeMixedFile(t, 21, 300, v)
		f, err := NewFile(NewSeekBufferFrom(sb.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		fes, err := f.Frames()
		if err != nil {
			t.Fatal(err)
		}
		var b Batch
		for _, fe := range fes { // warm up: grow columns and the read buffer pool
			if err := f.DecodeFrameBatch(fe, &b); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(10, func() {
			for _, fe := range fes {
				if err := f.DecodeFrameBatch(fe, &b); err != nil {
					t.Fatal(err)
				}
			}
		})
		if allocs != 0 {
			t.Fatalf("v%d: warm batch decode allocates %v times per pass, want 0", v, allocs)
		}
	}
}
