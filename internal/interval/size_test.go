// Pipeline-level size comparison for the v4 compact encoding: the same
// records a real tracegen→convert run produces, written at v3 and v4.
// Lives in the external test package so it can import the converter.
package interval_test

import (
	"path/filepath"
	"testing"

	"tracefw/internal/cluster"
	"tracefw/internal/convert"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/mpisim"
	"tracefw/internal/trace"
	"tracefw/internal/workload"
)

// TestPipelineV4SizeReduction runs the simulator and converter, then
// re-encodes the converted records under header versions 3 and 4 with
// the default frame sizes. The compact encoding must shrink the file by
// at least 30% — the headline number recorded in BENCH_format.json.
func TestPipelineV4SizeReduction(t *testing.T) {
	dir := t.TempDir()
	cfg := mpisim.Config{
		Cluster: cluster.Config{
			Nodes:       2,
			CPUsPerNode: 1,
			Seed:        23,
			TraceOpts: trace.Options{
				Prefix:  filepath.Join(dir, "raw"),
				Enabled: events.MaskAll,
			},
		},
		TasksPerNode: 1,
	}
	w, err := mpisim.NewFiles(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Start(workload.Ring{Iters: 40, Bytes: 256}.Main())
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	rawPaths := []string{cfg.Cluster.TraceOpts.FileName(0), cfg.Cluster.TraceOpts.FileName(1)}
	outPaths := []string{filepath.Join(dir, "a.ute"), filepath.Join(dir, "b.ute")}
	if _, err := convert.ConvertAll(rawPaths, outPaths, convert.Options{}); err != nil {
		t.Fatal(err)
	}
	f, err := interval.Open(outPaths[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := f.Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 100 {
		t.Fatalf("pipeline produced only %d records", len(recs))
	}
	size := func(version uint32) int {
		hdr := f.Header
		hdr.HeaderVersion = version
		sb := interval.NewSeekBuffer()
		w, err := interval.NewWriter(sb, hdr, interval.WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range recs {
			if err := w.Add(&recs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return len(sb.Bytes())
	}
	v3, v4 := size(3), size(4)
	t.Logf("pipeline records=%d v3=%dB v4=%dB (%.1f%%)", len(recs), v3, v4, 100*float64(v4)/float64(v3))
	if float64(v4) > 0.70*float64(v3) {
		t.Fatalf("v4 pipeline file is %dB, v3 is %dB: want at least 30%% smaller", v4, v3)
	}
}
