package interval

import (
	"fmt"

	"tracefw/internal/profile"
)

// ValidationReport summarizes a Validate pass.
type ValidationReport struct {
	Records int64
	Frames  int
	Dirs    int
}

// Validate walks an entire interval file and checks its structural
// invariants: frame directory links are consistent in both directions,
// every frame's byte size, record count and time bounds match its
// records, records are in ascending end-time order across the whole
// file, and (when a profile is supplied) every record matches its
// specification exactly. It returns a report on success.
func (f *File) Validate(p *profile.Profile) (*ValidationReport, error) {
	rep := &ValidationReport{}
	if p != nil && p.Version != f.Header.ProfileVersion {
		return nil, fmt.Errorf("interval: file profile version %#x does not match profile %#x",
			f.Header.ProfileVersion, p.Version)
	}
	dirs, err := f.Dirs()
	if err != nil {
		return nil, err
	}
	rep.Dirs = len(dirs)
	for i, d := range dirs {
		if i == 0 && d.Prev != 0 {
			return nil, fmt.Errorf("interval: first directory has prev %d", d.Prev)
		}
		if i > 0 && d.Prev != dirs[i-1].Offset {
			return nil, fmt.Errorf("interval: directory %d prev %d, want %d", i, d.Prev, dirs[i-1].Offset)
		}
		if i < len(dirs)-1 && d.Next != dirs[i+1].Offset {
			return nil, fmt.Errorf("interval: directory %d next %d, want %d", i, d.Next, dirs[i+1].Offset)
		}
		if i == len(dirs)-1 && d.Next != 0 {
			return nil, fmt.Errorf("interval: last directory has next %d", d.Next)
		}
		// Header-version-2 files store aggregate bounds in the directory
		// header (readDirEntries reconstructs them for v1, so they are
		// self-consistent by construction there); check them against the
		// entries they summarize.
		if f.Header.HeaderVersion >= 2 && len(d.Entries) > 0 {
			lo, hi := d.Entries[0].Start, d.Entries[0].End
			var n int64
			for _, fe := range d.Entries {
				if fe.Start < lo {
					lo = fe.Start
				}
				if fe.End > hi {
					hi = fe.End
				}
				n += int64(fe.Records)
			}
			if d.Start != lo || d.End != hi || d.Records != n {
				return nil, fmt.Errorf("interval: directory %d aggregates [%d %d] %d records, entries say [%d %d] %d",
					i, d.Start, d.End, d.Records, lo, hi, n)
			}
		}
	}

	lastEnd := int64(-1 << 62)
	var (
		cur  frameCursor
		rec  Record
		pbuf []byte
	)
	for _, d := range dirs {
		for fi, fe := range d.Entries {
			buf, err := f.ReadFrame(fe)
			if err != nil {
				return nil, err
			}
			if err := cur.init(f.Header.HeaderVersion, buf); err != nil {
				return nil, fmt.Errorf("interval: frame %d at %d: %w", fi, fe.Offset, err)
			}
			var n uint32
			first := true
			var lo, hi int64
			for len(cur.buf) > 0 {
				if err := cur.next(&rec, nil); err != nil {
					return nil, fmt.Errorf("interval: frame %d at %d: %w", fi, fe.Offset, err)
				}
				if p != nil {
					// The profile describes the fixed-width layout; on v4
					// frames check it against the synthesized payload, which
					// is what any profile-driven consumer would see.
					payload := cur.payload
					if payload == nil {
						pbuf = rec.AppendPayload(pbuf[:0])
						payload = pbuf
					}
					spec := p.Lookup(rec.Type, rec.Bebits)
					if spec == nil {
						return nil, fmt.Errorf("interval: no profile spec for %s/%s", rec.Type.Name(), rec.Bebits)
					}
					sz, err := spec.Size(payload)
					if err != nil {
						return nil, err
					}
					if sz != len(payload) {
						return nil, fmt.Errorf("interval: %s record is %d bytes, spec says %d",
							rec.Type.Name(), len(payload), sz)
					}
				}
				end := int64(rec.End())
				if end < lastEnd {
					return nil, fmt.Errorf("interval: record end %d before previous %d", end, lastEnd)
				}
				lastEnd = end
				if first || int64(rec.Start) < lo {
					lo = int64(rec.Start)
				}
				if first || end > hi {
					hi = end
				}
				first = false
				n++
			}
			if n != fe.Records {
				return nil, fmt.Errorf("interval: frame claims %d records, found %d", fe.Records, n)
			}
			if n > 0 && (int64(fe.Start) != lo || int64(fe.End) != hi) {
				return nil, fmt.Errorf("interval: frame bounds [%d %d], records say [%d %d]",
					fe.Start, fe.End, lo, hi)
			}
			rep.Records += int64(n)
			rep.Frames++
		}
	}
	return rep, nil
}
