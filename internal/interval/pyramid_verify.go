package interval

// Sampled cross-validation of a summary pyramid against the frames it
// claims to summarize — the check utility's defense against a sidecar
// whose CRCs and signature pass but whose cells no longer (or never
// did) match the data. Each sampled base cell is recomputed two ways:
// the pyramid engine answers the cell-aligned window from the stored
// summaries, the scan engine from a frame decode, and the two must
// agree exactly (the same contract the differential test suite pins
// down for arbitrary windows).

import (
	"context"
	"fmt"
	"reflect"

	"tracefw/internal/clock"
)

// VerifyPyramidOptions configures VerifyPyramid.
type VerifyPyramidOptions struct {
	// MaxCells bounds the sample size; <= 0 means 16. Base cells are
	// sampled evenly across the stored range.
	MaxCells int
	// Context, when non-nil, aborts the recomputes between frames.
	Context context.Context
}

// VerifyPyramid cross-validates p against f's frames on a sample of
// base cells and returns how many cells it checked. The file's
// attached pyramid is temporarily replaced by p and restored before
// returning. An error means the stored summaries diverge from a frame
// recompute (or the frames could not be read) — callers should treat
// the sidecar as damaged and rebuild it.
func (f *File) VerifyPyramid(p *Pyramid, opts VerifyPyramidOptions) (int, error) {
	maxCells := opts.MaxCells
	if maxCells <= 0 {
		maxCells = 16
	}
	old := f.Pyramid()
	f.AttachPyramid(p)
	defer f.AttachPyramid(old)

	if len(p.Levels) == 0 {
		return 0, nil
	}
	base := p.Levels[0]
	step := 1
	if len(base.Cells) > maxCells {
		step = len(base.Cells) / maxCells
	}
	checked := 0
	for i := 0; i < len(base.Cells); i += step {
		c := base.First + int64(i)
		lo := clock.Time(c) * base.Width
		if err := f.compareCellWindow(lo, lo+base.Width, p.TopK, opts.Context); err != nil {
			return checked, fmt.Errorf("interval: pyramid cell %d [%v .. %v): %w", c, lo, lo+base.Width, err)
		}
		checked++
	}
	return checked, nil
}

// compareCellWindow summarizes one cell-aligned window on both engines
// and compares everything but the engine metadata.
func (f *File) compareCellWindow(lo, hi clock.Time, topK int, ctx context.Context) error {
	var got [2]*WindowSummary
	for ei, eng := range []SummaryEngine{SummaryPyramid, SummaryScan} {
		ws, err := f.SummarizeWindow(WindowSummaryOptions{
			Bins: 1, Lo: lo, Hi: hi, Engine: eng, TopK: topK, Context: ctx,
		})
		if err != nil {
			return err
		}
		ws.Engine, ws.CellsUsed, ws.FramesDecoded = "", 0, 0
		got[ei] = ws
	}
	if !reflect.DeepEqual(got[0], got[1]) {
		return fmt.Errorf("stored cells disagree with frame recompute")
	}
	return nil
}
