package interval

import (
	"fmt"
	"io"
)

// SeekBuffer is an in-memory io.ReadWriteSeeker used for building and
// reading interval files without touching disk (tests, benchmarks, and
// in-memory pipelines).
type SeekBuffer struct {
	b   []byte
	pos int64
}

// NewSeekBuffer returns an empty buffer.
func NewSeekBuffer() *SeekBuffer { return &SeekBuffer{} }

// NewSeekBufferFrom returns a buffer reading (and writing) over b,
// positioned at the start.
func NewSeekBufferFrom(b []byte) *SeekBuffer { return &SeekBuffer{b: b} }

// Bytes returns the underlying contents.
func (s *SeekBuffer) Bytes() []byte { return s.b }

// Len returns the content length.
func (s *SeekBuffer) Len() int { return len(s.b) }

// Write implements io.Writer at the current position, extending the
// buffer as needed.
func (s *SeekBuffer) Write(p []byte) (int, error) {
	if grow := s.pos + int64(len(p)) - int64(len(s.b)); grow > 0 {
		s.b = append(s.b, make([]byte, grow)...)
	}
	copy(s.b[s.pos:], p)
	s.pos += int64(len(p))
	return len(p), nil
}

// Read implements io.Reader from the current position.
func (s *SeekBuffer) Read(p []byte) (int, error) {
	if s.pos >= int64(len(s.b)) {
		return 0, io.EOF
	}
	n := copy(p, s.b[s.pos:])
	s.pos += int64(n)
	return n, nil
}

// ReadAt implements io.ReaderAt: a positioned read that never moves the
// buffer's seek position, so concurrent frame reads (the parallel
// map-reduce engine) work on in-memory files exactly as on *os.File.
// Callers must not Write concurrently with ReadAt.
func (s *SeekBuffer) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("interval: negative ReadAt offset")
	}
	if off >= int64(len(s.b)) {
		return 0, io.EOF
	}
	n := copy(p, s.b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Seek implements io.Seeker.
func (s *SeekBuffer) Seek(offset int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = s.pos
	case io.SeekEnd:
		base = int64(len(s.b))
	default:
		return 0, fmt.Errorf("interval: bad whence %d", whence)
	}
	np := base + offset
	if np < 0 {
		return 0, fmt.Errorf("interval: negative seek position")
	}
	s.pos = np
	return np, nil
}
