package interval

import (
	"context"
	"sync"

	"tracefw/internal/clock"
	"tracefw/internal/par"
)

// This file is the parallel per-frame map-reduce engine the analysis
// tools (utestats tables, SLOG construction, diagram building) share.
// Frames are the format's natural unit of parallelism: each one decodes
// independently, and the directory metadata names every frame up front.
// The engine decodes frames on a bounded worker pool (internal/par) and
// hands the mapped values to a single reducer in strict frame order, so
// a parallel run reduces in exactly the sequence a sequential scan
// would — the byte-identity guarantee every consumer builds on.

// MapOptions selects frames and sets the worker count for MapFrames /
// MapFilesFrames.
type MapOptions struct {
	// Parallel is the worker count; <= 0 means GOMAXPROCS. Frames are
	// decoded concurrently only when every file supports positioned
	// reads (ConcurrentReads); otherwise the engine falls back to one
	// worker.
	Parallel int
	// Window restricts the run to frames overlapping [Lo, Hi]. Records
	// inside a selected frame are all delivered, including any spilling
	// past the window edges — callers filter records exactly as they
	// would after a full scan, so results do not depend on frame
	// boundaries.
	Window bool
	Lo, Hi clock.Time
	// Context, when non-nil, aborts the run once it is cancelled: no
	// new frames are issued and the engine returns the context's error.
	// Cancellation is checked per frame, so a long run stops within one
	// frame's worth of work. Servers set it to the request context;
	// batch callers leave it nil (context.Background()).
	Context context.Context
}

// selectFrames lists the frames opts selects for one file.
func selectFrames(f *File, opts MapOptions) ([]FrameEntry, error) {
	if opts.Window {
		return f.FramesInWindow(opts.Lo, opts.Hi)
	}
	return f.Frames()
}

// MapFrames runs mapFn over every selected frame of f, decoding frames
// concurrently, and calls reduceFn with the mapped values in frame
// order. See MapFilesFrames for the full contract.
func MapFrames[T any](f *File, opts MapOptions, mapFn func(fe FrameEntry, recs []Record) (T, error), reduceFn func(fe FrameEntry, v T) error) error {
	return MapFilesFrames([]*File{f}, opts,
		func(_ int, fe FrameEntry, recs []Record) (T, error) { return mapFn(fe, recs) },
		func(_ int, fe FrameEntry, v T) error { return reduceFn(fe, v) })
}

// MapFilesFrames runs mapFn over every selected frame of every file —
// all files' frames feed one worker pool, so small files do not idle
// workers — and calls reduceFn with the mapped values in (file, frame)
// order, the same order a sequential scan of the files one after
// another would produce. mapFn runs concurrently and must not touch
// shared state; reduceFn runs on one goroutine at a time in
// deterministic order and may keep state. The records passed to mapFn
// are freshly decoded per frame and may be retained.
//
// At most Workers(Parallel, frames) frames are in flight, so memory
// stays bounded no matter how large the files are. On error the engine
// stops issuing frames and returns the lowest-ordered failure; the
// reducer may have consumed an arbitrary prefix.
func MapFilesFrames[T any](files []*File, opts MapOptions, mapFn func(file int, fe FrameEntry, recs []Record) (T, error), reduceFn func(file int, fe FrameEntry, v T) error) error {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	type job struct {
		file int
		fe   FrameEntry
	}
	var jobs []job
	for fi, f := range files {
		if err := ctx.Err(); err != nil {
			return err
		}
		fes, err := selectFrames(f, opts)
		if err != nil {
			return err
		}
		for _, fe := range fes {
			jobs = append(jobs, job{fi, fe})
		}
	}
	p := par.Workers(opts.Parallel, len(jobs))
	if p > 1 {
		for _, f := range files {
			if !f.ConcurrentReads() {
				p = 1
				break
			}
		}
	}
	red := par.NewOrderedReducer()
	return par.Do(len(jobs), p, func(i int) error {
		if err := ctx.Err(); err != nil {
			red.Abort()
			return err
		}
		j := jobs[i]
		pb := getBuf()
		recs, buf, err := decodeFrame(files[j.file], j.fe, *pb)
		if buf != nil {
			*pb = buf[:0]
		}
		putBuf(pb)
		if err != nil {
			red.Abort()
			return err
		}
		v, err := mapFn(j.file, j.fe, recs)
		if err != nil {
			red.Abort()
			return err
		}
		return red.Reduce(i, func() error { return reduceFn(j.file, j.fe, v) })
	})
}

// batchPool recycles Batches across MapFilesBatches workers and runs;
// a recycled batch's columns keep their capacity, so steady-state
// columnar decode allocates nothing.
var batchPool = sync.Pool{New: func() any { return new(Batch) }}

// MapFilesBatches is MapFilesFrames with columnar frame decode: mapFn
// receives each selected frame as a Batch filled straight from the
// compact frame encoding (or built from the frame-decode hook's cached
// records when one is installed), skipping per-record materialization.
// Batches are pooled — the one passed to mapFn is valid only for the
// duration of the call and must not be retained; anything that outlives
// the call must be copied out (Batch.RowCopy). Ordering, concurrency,
// and error semantics match MapFilesFrames exactly.
func MapFilesBatches[T any](files []*File, opts MapOptions, mapFn func(file int, fe FrameEntry, b *Batch) (T, error), reduceFn func(file int, fe FrameEntry, v T) error) error {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	type job struct {
		file int
		fe   FrameEntry
	}
	var jobs []job
	for fi, f := range files {
		if err := ctx.Err(); err != nil {
			return err
		}
		fes, err := selectFrames(f, opts)
		if err != nil {
			return err
		}
		for _, fe := range fes {
			jobs = append(jobs, job{fi, fe})
		}
	}
	p := par.Workers(opts.Parallel, len(jobs))
	if p > 1 {
		for _, f := range files {
			if !f.ConcurrentReads() {
				p = 1
				break
			}
		}
	}
	red := par.NewOrderedReducer()
	return par.Do(len(jobs), p, func(i int) error {
		if err := ctx.Err(); err != nil {
			red.Abort()
			return err
		}
		j := jobs[i]
		b := batchPool.Get().(*Batch)
		defer batchPool.Put(b)
		if err := files[j.file].DecodeFrameBatch(j.fe, b); err != nil {
			red.Abort()
			return err
		}
		v, err := mapFn(j.file, j.fe, b)
		if err != nil {
			red.Abort()
			return err
		}
		return red.Reduce(i, func() error { return reduceFn(j.file, j.fe, v) })
	})
}

// decodeFrame produces one frame's records: through the file's
// frame-decode hook when one is installed (serving layers cache decoded
// frames there), otherwise by reading and decoding directly. Direct
// reads are positioned whenever the reader supports it — they never
// move the file's seek offset, so concurrent engine runs over one File
// are safe — with a seek-based fallback for plain readers. The returned
// records do not alias buf, which is handed back (possibly grown) for
// reuse.
func decodeFrame(f *File, fe FrameEntry, buf []byte) ([]Record, []byte, error) {
	if f.hook != nil {
		recs, err := f.hook(f, fe)
		return recs, buf, err
	}
	var err error
	if f.ra != nil {
		buf, err = f.ReadFrameAt(fe, buf)
	} else {
		buf, err = f.readFrameInto(fe, buf)
	}
	if err != nil {
		return nil, buf, err
	}
	recs, err := decodeFrameRecords(f.Header.HeaderVersion, fe, buf)
	return recs, buf, err
}

// The ordered reduction itself lives in par.OrderedReducer — the shard
// router's scatter-gather merge shares it, so both layers agree on the
// frame-order reduce discipline.
