package interval

import (
	"encoding/binary"
	"reflect"
	"testing"

	"tracefw/internal/profile"
)

// salvageOpen is the test entry point: ReadHeader + Salvage over an
// in-memory file.
func salvageOpen(t *testing.T, b []byte) (*File, *SalvageResult) {
	t.Helper()
	f, err := ReadHeader(NewSeekBufferFrom(b))
	if err != nil {
		t.Fatal(err)
	}
	return f, f.Salvage()
}

// recordsOf decodes the records of a set of salvaged frames.
func recordsOf(t *testing.T, f *File, frames []FrameEntry) []Record {
	t.Helper()
	var out []Record
	for _, fe := range frames {
		rs, err := f.FrameRecords(fe)
		if err != nil {
			t.Fatalf("salvaged frame at %d unreadable: %v", fe.Offset, err)
		}
		out = append(out, rs...)
	}
	return out
}

// TestSalvageCleanFile: on an undamaged file, salvage must recover
// exactly the frame list and report a clean pass, on every header
// version.
func TestSalvageCleanFile(t *testing.T) {
	for _, version := range []uint32{1, 2, 3, CurrentHeaderVersion} {
		sb, recs := writeRandomFile(t, 21, 500, version)
		f := openFile(t, sb)
		want, err := f.Frames()
		if err != nil {
			t.Fatal(err)
		}
		sv := f.Salvage()
		if !reflect.DeepEqual(sv.Frames, want) {
			t.Fatalf("v%d: salvage frames differ from Frames()", version)
		}
		rep := sv.Report
		if !rep.Clean() || rep.FramesRecovered != len(want) || rep.DirsGood == 0 {
			t.Fatalf("v%d: dirty report on clean file: %+v", version, rep)
		}
		if rep.RecordsRecovered != int64(len(recs)) {
			t.Fatalf("v%d: recovered %d records, wrote %d", version, rep.RecordsRecovered, len(recs))
		}
		if rep.FirstGood != want[0].Start || rep.LastGood != want[len(want)-1].End {
			t.Fatalf("v%d: time bounds [%v %v]", version, rep.FirstGood, rep.LastGood)
		}
	}
}

// TestSalvageTruncatedTail: cutting the file mid-way must keep every
// frame that physically survived and report the tail lost.
func TestSalvageTruncatedTail(t *testing.T) {
	for _, version := range []uint32{1, 2, 3, CurrentHeaderVersion} {
		sb, _ := writeRandomFile(t, 22, 600, version)
		base := sb.Bytes()
		pf := openFile(t, sb)
		all, err := pf.Frames()
		if err != nil {
			t.Fatal(err)
		}
		cut := len(base) * 2 / 3
		f, sv := salvageOpen(t, base[:cut])
		if !sv.Report.Truncated {
			t.Fatalf("v%d: truncation not reported: %+v", version, sv.Report)
		}
		// Every recovered frame must exist in the pristine file with
		// identical records, and every frame fully below the cut that is
		// reachable through intact directories must be recovered.
		pristine := map[int64]FrameEntry{}
		for _, fe := range all {
			pristine[fe.Offset] = fe
		}
		for _, fe := range sv.Frames {
			want, ok := pristine[fe.Offset]
			if !ok || want != fe {
				t.Fatalf("v%d: salvage invented frame %+v", version, fe)
			}
		}
		got := recordsOf(t, f, sv.Frames)
		wantRecs, err := pf.Scan().All()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 || len(got) >= len(wantRecs) {
			t.Fatalf("v%d: recovered %d of %d records from a 2/3 cut", version, len(got), len(wantRecs))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], wantRecs[i]) {
				t.Fatalf("v%d: record %d differs after salvage", version, i)
			}
		}
		if sv.Report.BytesLost == 0 {
			t.Fatalf("v%d: no bytes reported lost", version)
		}
	}
}

// TestSalvageResyncAfterBrokenLink: zeroing a middle directory header
// must lose only that directory's frames; the chain is re-found by
// scanning and later directories survive.
func TestSalvageResyncAfterBrokenLink(t *testing.T) {
	for _, version := range []uint32{1, 2, 3, CurrentHeaderVersion} {
		sb, _ := writeRandomFile(t, 23, 900, version)
		base := append([]byte(nil), sb.Bytes()...)
		pf := openFile(t, sb)
		dirs, err := pf.Dirs()
		if err != nil {
			t.Fatal(err)
		}
		if len(dirs) < 4 {
			t.Fatalf("want ≥ 4 dirs, got %d", len(dirs))
		}
		victim := dirs[1]
		for i := 0; i < dirHeaderSize(version); i++ {
			base[victim.Offset+int64(i)] = 0
		}
		f, sv := salvageOpen(t, base)
		rep := sv.Report
		if rep.DirsResynced == 0 || rep.DirsDropped == 0 {
			t.Fatalf("v%d: expected a resync: %+v", version, rep)
		}
		// All frames from the untouched directories must be present.
		want := map[int64]bool{}
		for di, d := range dirs {
			if di == 1 {
				continue
			}
			for _, fe := range d.Entries {
				want[fe.Offset] = true
			}
		}
		got := map[int64]bool{}
		for _, fe := range sv.Frames {
			got[fe.Offset] = true
		}
		for off := range want {
			if !got[off] {
				t.Fatalf("v%d: frame at %d from an untouched directory lost", version, off)
			}
		}
		// And nothing from the zeroed directory may appear.
		for _, fe := range dirs[1].Entries {
			if got[fe.Offset] {
				t.Fatalf("v%d: frame of the destroyed directory recovered as-is", version)
			}
		}
		_ = f
	}
}

// TestSalvageEmptyAndTinyFiles: an empty file (one empty directory) and
// a single-frame file both salvage cleanly; garbage after the header
// never panics.
func TestSalvageEmptyAndTinyFiles(t *testing.T) {
	empty := writeTestFile(t, 0, WriterOptions{})
	_, sv := salvageOpen(t, empty.Bytes())
	if sv.Report.FramesRecovered != 0 || !sv.Report.Clean() {
		t.Fatalf("empty file: %+v", sv.Report)
	}

	one := writeTestFile(t, 1, WriterOptions{})
	f1, sv1 := salvageOpen(t, one.Bytes())
	if sv1.Report.FramesRecovered != 1 || !sv1.Report.Clean() {
		t.Fatalf("single-frame file: %+v", sv1.Report)
	}
	if got := recordsOf(t, f1, sv1.Frames); len(got) != 1 {
		t.Fatalf("single-frame file yields %d records", len(got))
	}

	// Header followed by garbage: nothing to recover, no panic.
	garbage := append([]byte(nil), empty.Bytes()...)
	for i := len(garbage) - dirHeaderSize(CurrentHeaderVersion); i < len(garbage); i++ {
		garbage[i] = 0xa5
	}
	_, sv2 := salvageOpen(t, garbage)
	if sv2.Report.FramesRecovered != 0 {
		t.Fatalf("garbage tail recovered frames: %+v", sv2.Report)
	}
}

// TestSalvageRejectsFlippedEntry: a bit flip inside a frame entry must
// drop (only) that frame — the entry no longer matches its payload.
func TestSalvageRejectsFlippedEntry(t *testing.T) {
	for _, version := range []uint32{1, 2, 3, CurrentHeaderVersion} {
		sb, _ := writeRandomFile(t, 24, 400, version)
		base := append([]byte(nil), sb.Bytes()...)
		pf := openFile(t, sb)
		all, err := pf.Frames()
		if err != nil {
			t.Fatal(err)
		}
		// Flip a bit in the first directory's second entry's record count.
		entOff := pf.FirstDir + int64(dirHeaderSize(version)) + int64(entrySize(version)) + 12
		base[entOff] ^= 0x01
		_, sv := salvageOpen(t, base)
		if sv.Report.FramesDropped == 0 {
			t.Fatalf("v%d: flipped entry not dropped: %+v", version, sv.Report)
		}
		if sv.Report.FramesRecovered < len(all)-entrySizeSlack(version) {
			t.Fatalf("v%d: recovered %d of %d frames after one-entry flip",
				version, sv.Report.FramesRecovered, len(all))
		}
	}
}

// entrySizeSlack bounds how many frames a single flipped entry may cost
// per version: the flipped frame itself, plus on v3 the whole directory
// loses its metadata checksum only — entries are still salvaged
// individually, so the bound is 1 everywhere.
func entrySizeSlack(uint32) int { return 1 }

// TestRepairProducesValidFile: repairing a truncated file yields a new
// file that passes Validate and contains exactly the salvaged records.
func TestRepairProducesValidFile(t *testing.T) {
	for _, version := range []uint32{1, 2, 3, CurrentHeaderVersion} {
		sb, _ := writeRandomFile(t, 25, 500, version)
		base := sb.Bytes()
		f, sv := salvageOpen(t, base[:len(base)*3/4])
		want := recordsOf(t, f, sv.Frames)

		out := NewSeekBuffer()
		rep, err := Repair(f, sv, out, WriterOptions{FrameBytes: 512, FramesPerDir: 4})
		if err != nil {
			t.Fatal(err)
		}
		if rep.FramesWritten != len(sv.Frames) || rep.FramesSkipped != 0 {
			t.Fatalf("v%d: repair report %+v for %d frames", version, rep, len(sv.Frames))
		}
		rf, err := ReadHeader(NewSeekBufferFrom(out.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if rf.Header.HeaderVersion != version {
			t.Fatalf("v%d: repaired file has version %d", version, rf.Header.HeaderVersion)
		}
		if _, err := rf.Validate(profile.Standard()); err != nil {
			t.Fatalf("v%d: repaired file fails Validate: %v", version, err)
		}
		got, err := rf.Scan().All()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("v%d: repaired records differ (%d vs %d)", version, len(got), len(want))
		}
	}
}

// TestRepairEmptySalvage: repairing a file from which nothing could be
// salvaged still produces a valid (empty) interval file.
func TestRepairEmptySalvage(t *testing.T) {
	sb := writeTestFile(t, 0, WriterOptions{})
	f, sv := salvageOpen(t, sb.Bytes())
	out := NewSeekBuffer()
	if _, err := Repair(f, sv, out, WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	rf, err := ReadHeader(NewSeekBufferFrom(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rf.Validate(nil); err != nil {
		t.Fatal(err)
	}
}

// TestSalvageV3PayloadFlip: on the current (checksummed) version a bit
// flip anywhere in a frame's record bytes must drop that frame — the
// payload CRC catches what the v1/v2 layouts cannot.
func TestSalvageV3PayloadFlip(t *testing.T) {
	sb, _ := writeRandomFile(t, 26, 300, CurrentHeaderVersion)
	base := append([]byte(nil), sb.Bytes()...)
	pf := openFile(t, sb)
	all, err := pf.Frames()
	if err != nil {
		t.Fatal(err)
	}
	victim := all[len(all)/2]
	// Flip a low bit in the middle of the victim frame's payload: the
	// record still decodes, only the checksum can catch it.
	base[victim.Offset+int64(victim.Bytes)/2] ^= 0x02
	_, sv := salvageOpen(t, base)
	for _, fe := range sv.Frames {
		if fe.Offset == victim.Offset {
			t.Fatal("frame with flipped payload byte recovered")
		}
	}
	if sv.Report.FramesRecovered != len(all)-1 || sv.Report.FramesDropped != 1 {
		t.Fatalf("report %+v for %d frames", sv.Report, len(all))
	}
}

// TestSalvageBackwardLink: a next link pointing backward must not loop;
// salvage resyncs forward.
func TestSalvageBackwardLink(t *testing.T) {
	sb, _ := writeRandomFile(t, 27, 600, CurrentHeaderVersion)
	base := append([]byte(nil), sb.Bytes()...)
	pf := openFile(t, sb)
	dirs, err := pf.Dirs()
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 3 {
		t.Fatal("want ≥ 3 dirs")
	}
	// Point the second directory's next link back at the first.
	binary.LittleEndian.PutUint64(base[dirs[1].Offset+16:], uint64(dirs[0].Offset))
	_, sv := salvageOpen(t, base)
	if sv.Report.FramesRecovered < len(dirs[0].Entries)+len(dirs[1].Entries) {
		t.Fatalf("backward link lost frames before it: %+v", sv.Report)
	}
	// Later directories are reachable again through the forward scan.
	got := map[int64]bool{}
	for _, fe := range sv.Frames {
		got[fe.Offset] = true
	}
	for _, fe := range dirs[2].Entries {
		if !got[fe.Offset] {
			t.Fatalf("frame at %d after backward link not re-found", fe.Offset)
		}
	}
}
