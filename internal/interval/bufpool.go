package interval

import "sync"

// bufPool recycles the byte buffers of the hot frame paths: the
// Scanner's frame read buffer and the Writer's frame encode, directory
// group, and directory flush buffers. Convert and merge open many
// short-lived writers and scanners (one per node per pass), so pooling
// these keeps the per-file cost at a handful of allocations instead of
// one per frame.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64<<10)
		return &b
	},
}

// getBuf fetches a pooled buffer with zero length and nonzero capacity.
func getBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// putBuf returns a buffer to the pool. Callers must not touch the
// buffer afterwards.
func putBuf(b *[]byte) {
	if b == nil {
		return
	}
	bufPool.Put(b)
}
