package interval

import (
	"errors"
	"io"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/profile"
)

func mkRecord(i int) Record {
	return Record{
		Type:   events.EvMPISend,
		Bebits: profile.Complete,
		Start:  clock.Time(i) * clock.Millisecond,
		Dura:   clock.Millisecond / 2,
		CPU:    uint16(i % 4),
		Node:   uint16(i % 2),
		Thread: uint16(i % 8),
		Extra:  []uint64{uint64(i + 1), 7, uint64(64 * i), uint64(i), 0, 0xdead},
	}
}

func TestRecordPayloadRoundTrip(t *testing.T) {
	cases := []Record{
		{Type: events.EvRunning, Bebits: profile.Begin, Start: -5, Dura: 10},
		mkRecord(3),
		{Type: events.EvMarkerState, Bebits: profile.Continuation, Start: 1 << 50, Dura: 0,
			CPU: 65535, Node: 65535, Thread: 511, Extra: []uint64{1, 2, 3}},
	}
	for i, want := range cases {
		got, err := DecodePayload(want.AppendPayload(nil))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(want)) {
			t.Fatalf("case %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func normalize(r Record) Record {
	if len(r.Extra) == 0 {
		r.Extra = nil
	}
	return r
}

func TestFraming(t *testing.T) {
	small := make([]byte, 100)
	big := make([]byte, 300)
	for i := range big {
		big[i] = byte(i)
	}
	var buf []byte
	buf = AppendFramed(buf, small)
	buf = AppendFramed(buf, big)
	buf = AppendFramed(buf, nil) // empty record uses the escape form

	p1, n1, err := NextFramed(buf)
	if err != nil || len(p1) != 100 || n1 != 101 {
		t.Fatalf("small: len=%d n=%d err=%v", len(p1), n1, err)
	}
	buf = buf[n1:]
	p2, n2, err := NextFramed(buf)
	if err != nil || len(p2) != 300 || n2 != 303 {
		t.Fatalf("big: len=%d n=%d err=%v", len(p2), n2, err)
	}
	if !reflect.DeepEqual(p2, big) {
		t.Fatal("big payload corrupted")
	}
	buf = buf[n2:]
	p3, n3, err := NextFramed(buf)
	if err != nil || len(p3) != 0 || n3 != 3 {
		t.Fatalf("empty: len=%d n=%d err=%v", len(p3), n3, err)
	}
}

func TestFramingTruncation(t *testing.T) {
	buf := AppendFramed(nil, make([]byte, 50))
	for cut := 1; cut < len(buf); cut++ {
		if _, _, err := NextFramed(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, _, err := NextFramed(nil); err == nil {
		t.Fatal("empty buffer accepted")
	}
}

func testHeader() Header {
	return Header{
		ProfileVersion: profile.StdVersion,
		HeaderVersion:  CurrentHeaderVersion,
		FieldMask:      profile.MaskIndividual,
		Threads: []ThreadEntry{
			{Task: 0, PID: 100, SysTID: 1, Node: 0, LTID: 0, Type: events.ThreadMPI},
			{Task: -1, PID: 200, SysTID: 2, Node: 0, LTID: 1, Type: events.ThreadSystem},
			{Task: 1, PID: 101, SysTID: 3, Node: 1, LTID: 0, Type: events.ThreadMPI},
		},
		Markers: map[uint64]string{1: "Initial Phase", 2: "Compute"},
	}
}

func writeTestFile(t *testing.T, n int, opts WriterOptions) *SeekBuffer {
	t.Helper()
	sb := NewSeekBuffer()
	w, err := NewWriter(sb, testHeader(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		r := mkRecord(i)
		if err := w.Add(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return sb
}

func TestWriteReadHeader(t *testing.T) {
	sb := writeTestFile(t, 10, WriterOptions{})
	f, err := ReadHeader(sb)
	if err != nil {
		t.Fatal(err)
	}
	want := testHeader()
	if f.Header.ProfileVersion != want.ProfileVersion || f.Header.HeaderVersion != want.HeaderVersion ||
		f.Header.FieldMask != want.FieldMask {
		t.Fatalf("header mismatch: %+v", f.Header)
	}
	if !reflect.DeepEqual(f.Header.Threads, want.Threads) {
		t.Fatalf("thread table mismatch:\n got %+v\nwant %+v", f.Header.Threads, want.Threads)
	}
	if !reflect.DeepEqual(f.Header.Markers, want.Markers) {
		t.Fatalf("marker table mismatch: %+v", f.Header.Markers)
	}
	if s, ok := f.MarkerString(1); !ok || s != "Initial Phase" {
		t.Fatalf("MarkerString: %q %v", s, ok)
	}
}

func TestScanRoundTrip(t *testing.T) {
	const n = 500
	sb := writeTestFile(t, n, WriterOptions{FrameBytes: 512, FramesPerDir: 4})
	f, err := ReadHeader(sb)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := f.Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("scanned %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		want := mkRecord(i)
		if !reflect.DeepEqual(normalize(r), normalize(want)) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, r, want)
		}
	}
}

func TestMultipleDirectoriesLinked(t *testing.T) {
	sb := writeTestFile(t, 2000, WriterOptions{FrameBytes: 256, FramesPerDir: 4})
	f, err := ReadHeader(sb)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := f.Dirs()
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 3 {
		t.Fatalf("only %d directories; structure not exercised", len(dirs))
	}
	// Check link integrity both ways.
	for i, d := range dirs {
		if i > 0 && d.Prev != dirs[i-1].Offset {
			t.Fatalf("dir %d prev=%d, want %d", i, d.Prev, dirs[i-1].Offset)
		}
		if i < len(dirs)-1 && d.Next != dirs[i+1].Offset {
			t.Fatalf("dir %d next=%d, want %d", i, d.Next, dirs[i+1].Offset)
		}
	}
	if dirs[len(dirs)-1].Next != 0 {
		t.Fatal("last dir next != 0")
	}
	if dirs[0].Prev != 0 {
		t.Fatal("first dir prev != 0")
	}
	// All but the last dir are full.
	for i, d := range dirs[:len(dirs)-1] {
		if len(d.Entries) != 4 {
			t.Fatalf("dir %d has %d entries", i, len(d.Entries))
		}
	}
}

func TestFrameEntriesConsistent(t *testing.T) {
	sb := writeTestFile(t, 1000, WriterOptions{FrameBytes: 512, FramesPerDir: 8})
	f, err := ReadHeader(sb)
	if err != nil {
		t.Fatal(err)
	}
	fes, err := f.Frames()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i, fe := range fes {
		recs, err := f.FrameRecords(fe)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		total += int64(len(recs))
		var lo, hi clock.Time
		lo, hi = recs[0].Start, recs[0].End()
		for _, r := range recs {
			if r.Start < lo {
				lo = r.Start
			}
			if r.End() > hi {
				hi = r.End()
			}
		}
		if fe.Start != lo || fe.End != hi {
			t.Fatalf("frame %d bounds [%v %v], records say [%v %v]", i, fe.Start, fe.End, lo, hi)
		}
	}
	if total != 1000 {
		t.Fatalf("frames held %d records", total)
	}
	// Frames must be end-time ordered.
	for i := 1; i < len(fes); i++ {
		if fes[i].End < fes[i-1].End {
			t.Fatalf("frame %d end %v < frame %d end %v", i, fes[i].End, i-1, fes[i-1].End)
		}
	}
}

func TestFrameContaining(t *testing.T) {
	sb := writeTestFile(t, 3000, WriterOptions{FrameBytes: 512, FramesPerDir: 4})
	f, err := ReadHeader(sb)
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []clock.Time{0, clock.Millisecond * 700, clock.Millisecond * 2999} {
		fe, ok, err := f.FrameContaining(probe)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("no frame for %v", probe)
		}
		if fe.End < probe {
			t.Fatalf("frame for %v ends at %v", probe, fe.End)
		}
		// It must be the *first* such frame: its predecessor (if any)
		// must end before the probe. Verify via full list.
		fes, _ := f.Frames()
		for i, other := range fes {
			if other == fe && i > 0 && fes[i-1].End >= probe {
				t.Fatalf("frame %d is not the first covering %v", i, probe)
			}
		}
	}
	if _, ok, err := f.FrameContaining(clock.Time(1) << 60); err != nil || ok {
		t.Fatalf("probe past end: ok=%v err=%v", ok, err)
	}
}

func TestStats(t *testing.T) {
	sb := writeTestFile(t, 100, WriterOptions{FrameBytes: 512})
	f, err := ReadHeader(sb)
	if err != nil {
		t.Fatal(err)
	}
	first, last, n, err := f.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("records = %d", n)
	}
	if first != 0 || last != mkRecord(99).End() {
		t.Fatalf("span [%v %v]", first, last)
	}
}

func TestEndTimeOrderEnforced(t *testing.T) {
	sb := NewSeekBuffer()
	w, err := NewWriter(sb, testHeader(), WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r1 := Record{Type: events.EvRunning, Bebits: profile.Complete, Start: 100, Dura: 10}
	r2 := Record{Type: events.EvRunning, Bebits: profile.Complete, Start: 0, Dura: 10}
	if err := w.Add(&r1); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(&r2); err == nil {
		t.Fatal("out-of-order record accepted")
	}
}

func TestUnorderedOption(t *testing.T) {
	sb := NewSeekBuffer()
	w, err := NewWriter(sb, testHeader(), WriterOptions{Unordered: true})
	if err != nil {
		t.Fatal(err)
	}
	r1 := Record{Type: events.EvRunning, Bebits: profile.Complete, Start: 100, Dura: 10}
	r2 := Record{Type: events.EvRunning, Bebits: profile.Complete, Start: 0, Dura: 10}
	if err := w.Add(&r1); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(&r2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyFile(t *testing.T) {
	sb := NewSeekBuffer()
	w, err := NewWriter(sb, testHeader(), WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := ReadHeader(sb)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := f.Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("empty file yielded %d records", len(recs))
	}
	_, _, n, err := f.Stats()
	if err != nil || n != 0 {
		t.Fatalf("stats on empty file: n=%d err=%v", n, err)
	}
}

func TestAddAfterCloseFails(t *testing.T) {
	sb := NewSeekBuffer()
	w, _ := NewWriter(sb, testHeader(), WriterOptions{})
	w.Close()
	r := mkRecord(0)
	if err := w.Add(&r); err == nil {
		t.Fatal("Add after Close accepted")
	}
}

func TestFileOnDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.ute")
	w, fp, err := CreateFile(path, testHeader(), WriterOptions{FrameBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		r := mkRecord(i)
		if err := w.Add(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fp.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := f.Scan().All()
	if err != nil || len(recs) != 200 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
}

func TestScannerEOFIsSticky(t *testing.T) {
	sb := writeTestFile(t, 3, WriterOptions{})
	f, _ := ReadHeader(sb)
	s := f.Scan()
	for i := 0; i < 3; i++ {
		if _, err := s.Next(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := s.Next(); !errors.Is(err, io.EOF) {
			t.Fatalf("want EOF, got %v", err)
		}
	}
}

func TestGenericAccessAgreesWithDecoder(t *testing.T) {
	// The paper's profile-driven getItemByName path and the fast decoder
	// must agree on every field of every record.
	p := profile.Standard()
	sb := writeTestFile(t, 50, WriterOptions{})
	f, _ := ReadHeader(sb)
	sc := f.Scan()
	for {
		payload, err := sc.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodePayload(payload)
		if err != nil {
			t.Fatal(err)
		}
		spec := p.Lookup(dec.Type, dec.Bebits)
		if spec == nil {
			t.Fatalf("no spec for %s/%s", dec.Type.Name(), dec.Bebits)
		}
		if v, _, ok := spec.Item(payload, events.FieldStart); !ok || clock.Time(v) != dec.Start {
			t.Fatalf("start mismatch: %v vs %v", v, dec.Start)
		}
		if v, _, ok := spec.Item(payload, events.FieldDura); !ok || clock.Time(v) != dec.Dura {
			t.Fatalf("dura mismatch: %v vs %v", v, dec.Dura)
		}
		if v, _, ok := spec.Item(payload, events.FieldThread); !ok || uint16(v) != dec.Thread {
			t.Fatalf("thread mismatch")
		}
		for i, name := range events.ExtraFields(dec.Type) {
			v, _, ok := spec.Item(payload, name)
			if !ok || uint64(v) != dec.Extra[i] {
				t.Fatalf("extra %q mismatch: %v vs %v", name, v, dec.Extra[i])
			}
		}
		if sz, err := spec.Size(payload); err != nil || sz != len(payload) {
			t.Fatalf("spec size %d (%v), payload %d", sz, err, len(payload))
		}
	}
}

func TestFigure5TotalBytesSent(t *testing.T) {
	// The paper's Figure 5 program: sum msgSizeSent over all records.
	p := profile.Standard()
	sb := writeTestFile(t, 100, WriterOptions{FrameBytes: 512})
	f, _ := ReadHeader(sb)
	var total int64
	sc := f.Scan()
	for {
		payload, err := sc.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		dec, _ := DecodePayload(payload)
		spec := p.Lookup(dec.Type, dec.Bebits)
		if v, _, ok := spec.Item(payload, events.FieldMsgSizeSent); ok {
			total += v
		}
	}
	var want int64
	for i := 0; i < 100; i++ {
		want += int64(64 * i)
	}
	if total != want {
		t.Fatalf("total bytes sent = %d, want %d", total, want)
	}
}

func TestSeekBuffer(t *testing.T) {
	sb := NewSeekBuffer()
	sb.Write([]byte("hello world"))
	if _, err := sb.Seek(6, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	sb.Write([]byte("WORLD"))
	if string(sb.Bytes()) != "hello WORLD" {
		t.Fatalf("buffer: %q", sb.Bytes())
	}
	if _, err := sb.Seek(-5, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	if _, err := io.ReadFull(sb, got); err != nil || string(got) != "WORLD" {
		t.Fatalf("read %q err %v", got, err)
	}
	if _, err := sb.Seek(-1, io.SeekStart); err == nil {
		t.Fatal("negative seek accepted")
	}
	if _, err := sb.Seek(0, 99); err == nil {
		t.Fatal("bad whence accepted")
	}
	if _, err := sb.Seek(100, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if n, err := sb.Read(make([]byte, 4)); n != 0 || !errors.Is(err, io.EOF) {
		t.Fatalf("read past end: n=%d err=%v", n, err)
	}
}

func TestQuickFramedRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) > 4000 {
			payload = payload[:4000]
		}
		buf := AppendFramed(nil, payload)
		got, n, err := NextFramed(buf)
		if err != nil || n != len(buf) {
			return false
		}
		return string(got) == string(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(ty uint16, bb uint8, start, dura int64, cpu, node, thread uint16, extra []uint64) bool {
		if len(extra) > 16 {
			extra = extra[:16]
		}
		r := Record{
			Type: events.Type(ty), Bebits: profile.Bebits(bb % 4),
			Start: clock.Time(start), Dura: clock.Time(dura),
			CPU: cpu, Node: node, Thread: thread, Extra: extra,
		}
		got, err := DecodePayload(r.AppendPayload(nil))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(normalize(got), normalize(r))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorRecordRoundTrip(t *testing.T) {
	// MPI_Waitall records carry a trailing vector field; both the typed
	// decoder and the profile-driven accessor must read it back.
	r := Record{
		Type:   events.EvMPIWaitall,
		Bebits: profile.Complete,
		Start:  clock.Second,
		Dura:   clock.Millisecond,
		Extra:  []uint64{3, 0xabc},              // count, addr
		Vec:    []uint64{1, 7, 512, 0, 8, 1024}, // two (peer, seqno, bytes) triples
	}
	payload := r.AppendPayload(nil)
	got, err := DecodePayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Extra, r.Extra) || !reflect.DeepEqual(got.Vec, r.Vec) {
		t.Fatalf("round trip: %+v", got)
	}
	// Profile-driven access: the vector field is visible by name.
	spec := profile.Standard().Lookup(events.EvMPIWaitall, profile.Complete)
	if spec == nil {
		t.Fatal("no spec")
	}
	if !spec.IsVector(events.FieldRecvEnvs) {
		t.Fatal("recvEnvs not a vector in the spec")
	}
	elems, n, ok := spec.Vector(payload, events.FieldRecvEnvs)
	if !ok || n != 6 || len(elems) != 48 {
		t.Fatalf("Vector: n=%d len=%d ok=%v", n, len(elems), ok)
	}
	if v, _, ok := spec.Item(payload, events.FieldCount); !ok || v != 3 {
		t.Fatalf("count = %v %v", v, ok)
	}
	if sz, err := spec.Size(payload); err != nil || sz != len(payload) {
		t.Fatalf("Size = %d (%v), payload %d", sz, err, len(payload))
	}
	// Empty vector still round-trips (non-final pieces).
	r.Vec = nil
	got, err = DecodePayload(r.AppendPayload(nil))
	if err != nil || len(got.Vec) != 0 {
		t.Fatalf("empty vector: %+v err=%v", got, err)
	}
}
