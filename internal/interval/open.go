package interval

import (
	"fmt"
	"io"
	"os"
)

// This file is the package's single entry point for opening interval
// data. Historically there were three: Open (a path), ReadHeader (an
// io.ReadSeeker), and OpenSalvage (a path, tolerating damage). They are
// now one pair — Open for paths, NewFile for readers — configured by
// functional options; the old names remain as thin deprecated wrappers
// so existing callers keep compiling unchanged.

// Option configures Open and NewFile.
type Option func(*openOptions)

type openOptions struct {
	verifySums bool
	salvage    *SalvageResult
	pyramid    bool
	liveTail   int64
}

func defaultOpenOptions() openOptions {
	return openOptions{verifySums: true, pyramid: true, liveTail: -1}
}

// WithVerifyChecksums controls verification of per-frame payload
// CRC-32C checksums on version-3+ files (the default is true). Turning
// it off skips the checksum pass on every frame read — useful when the
// file was just written or validated and the reread cost matters.
// Directory metadata checksums are always verified: they are read once
// and guard every offset the reader will trust. Salvage ignores this
// option and always verifies payloads; its soundness bar does not bend.
func WithVerifyChecksums(v bool) Option {
	return func(o *openOptions) { o.verifySums = v }
}

// WithSalvage opens the file in best-effort recovery mode: after the
// fixed header parses, a full Salvage pass runs and its result — the
// recovered frames and the SalvageReport — is stored in *sink. Open
// then only fails when the fixed header itself is unreadable;
// everything after it is handled tolerantly by the salvage pass, which
// never fails. The sink must be non-nil.
func WithSalvage(sink *SalvageResult) Option {
	return func(o *openOptions) { o.salvage = sink }
}

// WithPyramid controls the summary-pyramid sidecar auto-load (the
// default is true): Open looks for <path>.pyr and, when it decodes,
// verifies, and matches the trace's frame-directory signature, attaches
// it so SummarizeWindow can answer from summary cells. The sidecar is
// strictly advisory — a missing, corrupt, truncated, or stale sidecar
// is silently ignored and every query falls back to the scan engine —
// so no option value can ever make Open fail. NewFile never auto-loads
// (a bare reader has no path).
func WithPyramid(v bool) Option {
	return func(o *openOptions) { o.pyramid = v }
}

// WithLiveTail opens a snapshot of a file that is still being written:
// sealedSize is a prefix length previously reported by the writer (a
// SealInfo.Size from WriterOptions.OnSeal). The reader clamps every
// bound to sealedSize, so bytes beyond it — not yet written, or a
// directory mid-flush — are invisible, and it treats a directory whose
// next link equals sealedSize as the end of the chain (the writer
// writes that link speculatively; it only becomes a real pointer once
// the next directory seals). A sealedSize that covers only the header
// yields a valid empty trace. Opening a fully Closed file with its
// final size behaves identically to a plain Open.
func WithLiveTail(sealedSize int64) Option {
	return func(o *openOptions) { o.liveTail = sealedSize }
}

// Open opens an interval file on disk. With no options it behaves
// exactly as the historical Open plus the advisory pyramid sidecar
// auto-load; see WithSalvage, WithVerifyChecksums, and WithPyramid for
// the configurable behaviors.
func Open(path string, opts ...Option) (*File, error) {
	o := defaultOpenOptions()
	for _, opt := range opts {
		opt(&o)
	}
	fp, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	f, err := NewFile(fp, opts...)
	if err != nil {
		fp.Close()
		return nil, err
	}
	if o.pyramid {
		// Advisory: any load error (no sidecar, damage, staleness, or
		// even unreadable frame metadata on a damaged trace) just means
		// queries scan.
		if p, err := LoadPyramid(PyramidPath(path), f); err == nil {
			f.pyr = p
		}
	}
	return f, nil
}

// NewFile parses the header, thread table, and marker table from r (the
// paper's readHeader), leaving r positioned at the first frame
// directory. It accepts the same options as Open. When r implements
// io.Closer the returned File owns it and Close closes it; when r
// implements io.ReaderAt frames can be read concurrently
// (ConcurrentReads).
func NewFile(r io.ReadSeeker, opts ...Option) (*File, error) {
	o := defaultOpenOptions()
	for _, opt := range opts {
		opt(&o)
	}
	f, err := readFileHeader(r)
	if err != nil {
		return nil, err
	}
	if o.liveTail >= 0 {
		if o.liveTail > f.Size {
			return nil, fmt.Errorf("interval: live tail %d beyond file size %d", o.liveTail, f.Size)
		}
		if o.liveTail < f.FirstDir {
			return nil, fmt.Errorf("interval: live tail %d truncates the header (tables end at %d)", o.liveTail, f.FirstDir)
		}
		f.Size = o.liveTail
		f.live = true
	}
	f.verifySums = o.verifySums
	if o.salvage != nil {
		*o.salvage = *f.Salvage()
	}
	return f, nil
}

// ReadHeader parses the header, thread table, and marker table, leaving
// the file positioned at the first frame directory.
//
// Deprecated: use NewFile, which additionally accepts Options. ReadHeader
// is NewFile with no options.
func ReadHeader(r io.ReadSeeker) (*File, error) { return NewFile(r) }

// OpenSalvage opens an interval file for best-effort recovery. Unlike
// plain Open it only fails when the fixed header itself is unreadable —
// everything after the header is handled by the salvage pass, which
// never fails. The returned File must still be closed by the caller.
//
// Deprecated: use Open with WithSalvage, which reports the recovery
// through the option's sink:
//
//	var res SalvageResult
//	f, err := Open(path, WithSalvage(&res))
func OpenSalvage(path string) (*File, *SalvageResult, error) {
	var res SalvageResult
	f, err := Open(path, WithSalvage(&res))
	if err != nil {
		return nil, nil, err
	}
	return f, &res, nil
}
