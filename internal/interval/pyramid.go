package interval

// Multi-resolution summary pyramid (FORMATS.md §5). A pyramid is a
// sidecar index over one interval file: the time axis is cut into
// dyadic cells — level 0 cells are BaseWidth (a power of two)
// nanoseconds wide and aligned to absolute time zero, every higher
// level doubles the width — and each cell stores a small summary of the
// records overlapping it: per-type busy time, the count of records
// beginning in the cell, the peak concurrency of busy intervals, and
// the top-k longest distinct busy intervals. Window queries
// (SummarizeWindow) answer from O(cells) summaries instead of
// O(records) frame decodes; only window edges that fall inside a base
// cell descend to frame decode, so aligned windows decode no frames at
// all.
//
// The pyramid is strictly advisory: it lives next to the trace as
// <trace>.pyr, is bound to the trace by a source signature over the
// frame directory, and every load error — missing file, bad magic, CRC
// mismatch, stale signature — silently degrades to the scan engine.
// Nothing in the pyramid can prevent opening or scanning the trace.
//
// Cell summary semantics (the exactness contract the differential
// suite enforces; see SummarizeWindow):
//
//   - ByType: for every record r = [s, s+dura) with dura > 0, the
//     overlap min(e, cellHi) - max(s, cellLo) is added to r's type.
//     All types are included (Running and GlobalClock too); consumers
//     filter at query time. Overlap is additive over any partition of
//     the window, which is what makes pyramid sums byte-identical to
//     scan sums.
//   - Records: the number of records (any type, zero-duration
//     included) whose start time lies in [cellLo, cellHi). Counting
//     starts rather than overlaps keeps the statistic additive.
//   - ByLane: like ByType but summed per (node, cpu) lane and
//     restricted to busy intervals — every type except Running and
//     GlobalClock — matching the stats load-balance table.
//   - MaxConc: the peak number of busy intervals simultaneously open
//     at any instant in [cellLo, cellHi), computed from the global
//     event sweep. A parent's peak is the max of its children's, so
//     this is exact at every level.
//   - Top: the TopK longest distinct busy intervals overlapping the
//     cell, ordered by (Dura desc, Start asc, Type, Node, CPU,
//     Thread). Distinct means distinct as tuples: a window's top-k is
//     the merge of its cells' top-k lists plus edge decodes.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/bits"
	"os"
	"sort"

	"tracefw/internal/clock"
	"tracefw/internal/events"
)

const (
	pyrMagic = "UTEPYR1\x00"
	// PyramidVersion is the sidecar format version written by Encode.
	PyramidVersion = 1
	// pyrHeaderSize is the fixed header: magic, version, flags,
	// baseWidth, levels, topK, signature (records, frames, start, end,
	// dirSum), headerSum.
	pyrHeaderSize = 8 + 4 + 4 + 8 + 4 + 4 + 8 + 8 + 8 + 8 + 4 + 4
	// pyrLevelHeaderSize precedes each level's cell payload: firstCell,
	// cellCount, payload length, payload CRC.
	pyrLevelHeaderSize = 8 + 4 + 4 + 4
	// pyrMaxLevels bounds the level count a decoder will accept; with
	// doubling widths, 48 levels cover any int64 time axis from a
	// one-nanosecond base.
	pyrMaxLevels = 48
	// pyrMaxTopK bounds the per-cell top-k list a decoder will accept.
	pyrMaxTopK = 64
)

// Lane identifies a (node, cpu) execution lane.
type Lane struct {
	Node uint16
	CPU  uint16
}

func (l Lane) key() uint32 { return uint32(l.Node)<<16 | uint32(l.CPU) }

// TypeBusy is one per-type busy-time histogram entry of a cell.
type TypeBusy struct {
	Type events.Type
	Busy clock.Time
}

// LaneBusy is one per-lane busy-time entry of a cell.
type LaneBusy struct {
	Lane Lane
	Busy clock.Time
}

// TopInterval is one entry of a cell's top-k longest busy intervals.
type TopInterval struct {
	Start  clock.Time
	Dura   clock.Time
	Type   events.Type
	Node   uint16
	CPU    uint16
	Thread uint16
}

// topLess is the canonical top-k order: longest first, then earliest,
// then the identifying fields. It is a strict total order on distinct
// tuples, which makes every top-k list deterministic.
func topLess(a, b TopInterval) bool {
	if a.Dura != b.Dura {
		return a.Dura > b.Dura
	}
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.Type != b.Type {
		return a.Type < b.Type
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.CPU != b.CPU {
		return a.CPU < b.CPU
	}
	return a.Thread < b.Thread
}

// PyramidCell is one time cell's summary. Zero value = empty cell.
type PyramidCell struct {
	Records int64
	MaxConc int
	ByType  []TypeBusy    // strictly ascending Type
	ByLane  []LaneBusy    // strictly ascending (Node, CPU)
	Top     []TopInterval // topLess order, distinct tuples
}

func (c *PyramidCell) empty() bool {
	return c.Records == 0 && c.MaxConc == 0 && len(c.ByType) == 0 && len(c.ByLane) == 0 && len(c.Top) == 0
}

// PyramidLevel holds the cells of one resolution level. Cell i (an
// absolute index: cell i covers [i*Width, (i+1)*Width)) is stored at
// Cells[i-First]; indices outside [First, First+len(Cells)) are empty.
type PyramidLevel struct {
	Width clock.Time
	First int64
	Cells []PyramidCell
}

// Cell returns the summary of absolute cell index i, or nil when the
// index is outside the stored range (an empty cell).
func (l *PyramidLevel) Cell(i int64) *PyramidCell {
	if i < l.First || i >= l.First+int64(len(l.Cells)) {
		return nil
	}
	return &l.Cells[i-l.First]
}

// PyramidSig binds a pyramid to the exact frame directory it was built
// from. A mismatch means the trace was rewritten after the pyramid:
// the pyramid is stale and is ignored.
type PyramidSig struct {
	Records uint64
	Frames  uint64
	Start   clock.Time
	End     clock.Time
	// DirSum is a CRC-32C over every frame entry (offset, bytes,
	// records, start, end, payload sum) in file order.
	DirSum uint32
}

// Pyramid is a decoded multi-resolution summary index. Levels[0] is
// the finest (BaseWidth); each next level doubles the cell width.
type Pyramid struct {
	BaseWidth clock.Time
	TopK      int
	Sig       PyramidSig
	Levels    []PyramidLevel
}

// PyramidPath returns the sidecar path for a trace path.
func PyramidPath(tracePath string) string { return tracePath + ".pyr" }

// Signature computes the pyramid source signature of the file's
// current frame directory.
func (f *File) Signature() (PyramidSig, error) {
	fes, err := f.Frames()
	if err != nil {
		return PyramidSig{}, err
	}
	var sig PyramidSig
	sig.Frames = uint64(len(fes))
	var ent [40]byte
	sum := uint32(0)
	for i, fe := range fes {
		if i == 0 || fe.Start < sig.Start {
			sig.Start = fe.Start
		}
		if fe.End > sig.End {
			sig.End = fe.End
		}
		sig.Records += uint64(fe.Records)
		binary.LittleEndian.PutUint64(ent[0:], uint64(fe.Offset))
		binary.LittleEndian.PutUint32(ent[8:], fe.Bytes)
		binary.LittleEndian.PutUint32(ent[12:], fe.Records)
		binary.LittleEndian.PutUint64(ent[16:], uint64(fe.Start))
		binary.LittleEndian.PutUint64(ent[24:], uint64(fe.End))
		binary.LittleEndian.PutUint32(ent[32:], fe.Sum)
		binary.LittleEndian.PutUint32(ent[36:], 0)
		sum = crc32.Update(sum, crcTable, ent[:])
	}
	sig.DirSum = sum
	return sig, nil
}

// Encode serializes the pyramid in the sidecar format.
func (p *Pyramid) Encode() []byte {
	buf := make([]byte, 0, pyrHeaderSize+len(p.Levels)*pyrLevelHeaderSize)
	buf = append(buf, pyrMagic...)
	buf = appendU32(buf, PyramidVersion)
	buf = appendU32(buf, 0) // flags
	buf = appendU64(buf, uint64(p.BaseWidth))
	buf = appendU32(buf, uint32(len(p.Levels)))
	buf = appendU32(buf, uint32(p.TopK))
	buf = appendU64(buf, p.Sig.Records)
	buf = appendU64(buf, p.Sig.Frames)
	buf = appendU64(buf, uint64(p.Sig.Start))
	buf = appendU64(buf, uint64(p.Sig.End))
	buf = appendU32(buf, p.Sig.DirSum)
	buf = appendU32(buf, crc32.Checksum(buf[8:], crcTable))
	for li := range p.Levels {
		l := &p.Levels[li]
		var pay []byte
		for ci := range l.Cells {
			pay = appendCell(pay, &l.Cells[ci])
		}
		buf = appendU64(buf, uint64(l.First))
		buf = appendU32(buf, uint32(len(l.Cells)))
		buf = appendU32(buf, uint32(len(pay)))
		buf = appendU32(buf, crc32.Checksum(pay, crcTable))
		buf = append(buf, pay...)
	}
	return buf
}

func appendCell(dst []byte, c *PyramidCell) []byte {
	dst = binary.AppendUvarint(dst, uint64(c.Records))
	dst = binary.AppendUvarint(dst, uint64(c.MaxConc))
	dst = binary.AppendUvarint(dst, uint64(len(c.ByType)))
	prevT := uint64(0)
	for i, tb := range c.ByType {
		v := uint64(tb.Type)
		if i == 0 {
			dst = binary.AppendUvarint(dst, v)
		} else {
			// Strict ascent lets the delta store v-prev-1, so the
			// decoder rejects unsorted or duplicate entries for free.
			dst = binary.AppendUvarint(dst, v-prevT-1)
		}
		prevT = v
		dst = binary.AppendUvarint(dst, uint64(tb.Busy))
	}
	dst = binary.AppendUvarint(dst, uint64(len(c.ByLane)))
	prevL := uint64(0)
	for i, lb := range c.ByLane {
		v := uint64(lb.Lane.key())
		if i == 0 {
			dst = binary.AppendUvarint(dst, v)
		} else {
			dst = binary.AppendUvarint(dst, v-prevL-1)
		}
		prevL = v
		dst = binary.AppendUvarint(dst, uint64(lb.Busy))
	}
	dst = binary.AppendUvarint(dst, uint64(len(c.Top)))
	for _, ti := range c.Top {
		dst = binary.AppendVarint(dst, int64(ti.Start))
		dst = binary.AppendUvarint(dst, uint64(ti.Dura))
		dst = binary.AppendUvarint(dst, uint64(ti.Type))
		dst = binary.AppendUvarint(dst, uint64(ti.Node))
		dst = binary.AppendUvarint(dst, uint64(ti.CPU))
		dst = binary.AppendUvarint(dst, uint64(ti.Thread))
	}
	return dst
}

// pyrCursor decodes the varint cell stream with bounds checks.
type pyrCursor struct {
	buf []byte
}

func (c *pyrCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.buf)
	if n <= 0 {
		return 0, fmt.Errorf("interval: pyramid cell stream: bad uvarint")
	}
	c.buf = c.buf[n:]
	return v, nil
}

func (c *pyrCursor) varint() (int64, error) {
	v, n := binary.Varint(c.buf)
	if n <= 0 {
		return 0, fmt.Errorf("interval: pyramid cell stream: bad varint")
	}
	c.buf = c.buf[n:]
	return v, nil
}

// count reads a length prefix and bounds it by the remaining bytes at
// minimum min bytes per element, so corrupt counts cannot trigger huge
// allocations.
func (c *pyrCursor) count(min int) (int, error) {
	v, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(c.buf)/min) {
		return 0, fmt.Errorf("interval: pyramid cell stream: count %d exceeds remaining bytes", v)
	}
	return int(v), nil
}

// decodeCell decodes and validates one cell. cellLo/cellHi bound the
// cell in time: top entries must genuinely overlap the cell, so a
// damaged pyramid cannot invent intervals outside its own geometry.
func (c *pyrCursor) decodeCell(out *PyramidCell, topK int, cellLo, cellHi clock.Time) error {
	recs, err := c.uvarint()
	if err != nil {
		return err
	}
	if recs > uint64(1)<<62 {
		return fmt.Errorf("interval: pyramid cell claims %d records", recs)
	}
	out.Records = int64(recs)
	mc, err := c.uvarint()
	if err != nil {
		return err
	}
	if mc > uint64(1)<<31 {
		return fmt.Errorf("interval: pyramid cell claims concurrency %d", mc)
	}
	out.MaxConc = int(mc)
	nt, err := c.count(2)
	if err != nil {
		return err
	}
	if nt > 0 {
		out.ByType = make([]TypeBusy, 0, nt)
	}
	prev := uint64(0)
	for i := 0; i < nt; i++ {
		d, err := c.uvarint()
		if err != nil {
			return err
		}
		v := d
		if i > 0 {
			v = prev + 1 + d
		}
		if v > uint64(^uint16(0)) {
			return fmt.Errorf("interval: pyramid cell type %d out of range", v)
		}
		prev = v
		busy, err := c.uvarint()
		if err != nil {
			return err
		}
		if busy == 0 || busy > uint64(1)<<62 {
			return fmt.Errorf("interval: pyramid cell has non-positive busy time")
		}
		out.ByType = append(out.ByType, TypeBusy{Type: events.Type(v), Busy: clock.Time(busy)})
	}
	nl, err := c.count(2)
	if err != nil {
		return err
	}
	if nl > 0 {
		out.ByLane = make([]LaneBusy, 0, nl)
	}
	prev = 0
	for i := 0; i < nl; i++ {
		d, err := c.uvarint()
		if err != nil {
			return err
		}
		v := d
		if i > 0 {
			v = prev + 1 + d
		}
		if v > uint64(^uint32(0)) {
			return fmt.Errorf("interval: pyramid cell lane %d out of range", v)
		}
		prev = v
		busy, err := c.uvarint()
		if err != nil {
			return err
		}
		if busy == 0 || busy > uint64(1)<<62 {
			return fmt.Errorf("interval: pyramid cell has non-positive lane busy time")
		}
		out.ByLane = append(out.ByLane, LaneBusy{
			Lane: Lane{Node: uint16(v >> 16), CPU: uint16(v)},
			Busy: clock.Time(busy),
		})
	}
	ntop, err := c.count(6)
	if err != nil {
		return err
	}
	if ntop > topK {
		return fmt.Errorf("interval: pyramid cell stores %d top entries, limit %d", ntop, topK)
	}
	if ntop > 0 {
		out.Top = make([]TopInterval, 0, ntop)
	}
	for i := 0; i < ntop; i++ {
		s, err := c.varint()
		if err != nil {
			return err
		}
		dura, err := c.uvarint()
		if err != nil {
			return err
		}
		typ, err := c.uvarint()
		if err != nil {
			return err
		}
		node, err := c.uvarint()
		if err != nil {
			return err
		}
		cpu, err := c.uvarint()
		if err != nil {
			return err
		}
		thr, err := c.uvarint()
		if err != nil {
			return err
		}
		if dura == 0 || dura > uint64(1)<<62 || typ > uint64(^uint16(0)) ||
			node > uint64(^uint16(0)) || cpu > uint64(^uint16(0)) || thr > uint64(^uint16(0)) {
			return fmt.Errorf("interval: pyramid top entry out of range")
		}
		ti := TopInterval{
			Start: clock.Time(s), Dura: clock.Time(dura),
			Type: events.Type(typ), Node: uint16(node), CPU: uint16(cpu), Thread: uint16(thr),
		}
		if ti.Start >= cellHi || ti.Start+ti.Dura <= cellLo || ti.Start > ti.Start+ti.Dura {
			return fmt.Errorf("interval: pyramid top entry does not overlap its cell")
		}
		if i > 0 && !topLess(out.Top[i-1], ti) {
			return fmt.Errorf("interval: pyramid top entries out of order")
		}
		out.Top = append(out.Top, ti)
	}
	return nil
}

// DecodePyramid parses and validates a sidecar. Every offset, count,
// and payload is bounds-checked and CRC-verified before use — like the
// frame directory, the decoder trusts nothing it has not verified, so
// arbitrary bytes can never panic it or yield cells the encoder could
// not have produced.
func DecodePyramid(data []byte) (*Pyramid, error) {
	if len(data) < pyrHeaderSize {
		return nil, fmt.Errorf("interval: pyramid sidecar too short (%d bytes)", len(data))
	}
	if string(data[:8]) != pyrMagic {
		return nil, fmt.Errorf("interval: bad pyramid magic %q", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != PyramidVersion {
		return nil, fmt.Errorf("interval: unsupported pyramid version %d", v)
	}
	if got, want := crc32.Checksum(data[8:pyrHeaderSize-4], crcTable), binary.LittleEndian.Uint32(data[pyrHeaderSize-4:]); got != want {
		return nil, fmt.Errorf("interval: pyramid header fails checksum")
	}
	p := &Pyramid{
		BaseWidth: clock.Time(binary.LittleEndian.Uint64(data[16:])),
		TopK:      int(binary.LittleEndian.Uint32(data[28:])),
	}
	nLevels := int(binary.LittleEndian.Uint32(data[24:]))
	p.Sig.Records = binary.LittleEndian.Uint64(data[32:])
	p.Sig.Frames = binary.LittleEndian.Uint64(data[40:])
	p.Sig.Start = clock.Time(binary.LittleEndian.Uint64(data[48:]))
	p.Sig.End = clock.Time(binary.LittleEndian.Uint64(data[56:]))
	p.Sig.DirSum = binary.LittleEndian.Uint32(data[64:])
	if p.BaseWidth <= 0 || bits.OnesCount64(uint64(p.BaseWidth)) != 1 {
		return nil, fmt.Errorf("interval: pyramid base width %d is not a positive power of two", p.BaseWidth)
	}
	if nLevels > pyrMaxLevels || int64(nLevels)+int64(bits.TrailingZeros64(uint64(p.BaseWidth))) > 62 {
		return nil, fmt.Errorf("interval: pyramid claims %d levels over base width %d", nLevels, p.BaseWidth)
	}
	if p.TopK < 0 || p.TopK > pyrMaxTopK {
		return nil, fmt.Errorf("interval: pyramid top-k %d out of range", p.TopK)
	}
	off := pyrHeaderSize
	if nLevels > 0 {
		p.Levels = make([]PyramidLevel, 0, nLevels)
	}
	for li := 0; li < nLevels; li++ {
		if len(data)-off < pyrLevelHeaderSize {
			return nil, fmt.Errorf("interval: pyramid level %d header truncated", li)
		}
		first := int64(binary.LittleEndian.Uint64(data[off:]))
		count := binary.LittleEndian.Uint32(data[off+8:])
		payLen := binary.LittleEndian.Uint32(data[off+12:])
		paySum := binary.LittleEndian.Uint32(data[off+16:])
		off += pyrLevelHeaderSize
		if int64(payLen) > int64(len(data)-off) {
			return nil, fmt.Errorf("interval: pyramid level %d claims %d payload bytes beyond sidecar size", li, payLen)
		}
		// Every cell takes at least 5 bytes, so the count is bounded by
		// the payload length before any allocation happens.
		if count > payLen/5+1 || (count > 0 && payLen == 0) {
			return nil, fmt.Errorf("interval: pyramid level %d claims %d cells in %d bytes", li, count, payLen)
		}
		width := p.BaseWidth << uint(li)
		maxIdx := int64(1) << uint(62-bits.TrailingZeros64(uint64(width)))
		if first < -maxIdx || first+int64(count) > maxIdx {
			return nil, fmt.Errorf("interval: pyramid level %d cell range [%d,%d) out of time axis", li, first, first+int64(count))
		}
		pay := data[off : off+int(payLen)]
		off += int(payLen)
		if crc32.Checksum(pay, crcTable) != paySum {
			return nil, fmt.Errorf("interval: pyramid level %d fails payload checksum", li)
		}
		lvl := PyramidLevel{Width: width, First: first, Cells: make([]PyramidCell, count)}
		cur := pyrCursor{buf: pay}
		for ci := int64(0); ci < int64(count); ci++ {
			lo := (first + ci) * int64(width)
			if err := cur.decodeCell(&lvl.Cells[ci], p.TopK, clock.Time(lo), clock.Time(lo)+width); err != nil {
				return nil, fmt.Errorf("interval: pyramid level %d cell %d: %w", li, ci, err)
			}
		}
		if len(cur.buf) != 0 {
			return nil, fmt.Errorf("interval: pyramid level %d has %d trailing payload bytes", li, len(cur.buf))
		}
		p.Levels = append(p.Levels, lvl)
	}
	if off != len(data) {
		return nil, fmt.Errorf("interval: pyramid has %d trailing bytes", len(data)-off)
	}
	return p, nil
}

// WritePyramidFile writes the sidecar atomically (temp file + rename),
// so a crash mid-write leaves either the old sidecar or none — never a
// torn one that readers would have to distrust.
func WritePyramidFile(path string, p *Pyramid) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, p.Encode(), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadPyramid reads, decodes, and signature-checks the sidecar at path
// against f. It returns an error for any defect; callers that want the
// advisory behavior (Open) discard the error and fall back to scans.
func LoadPyramid(path string, f *File) (*Pyramid, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := DecodePyramid(data)
	if err != nil {
		return nil, err
	}
	sig, err := f.Signature()
	if err != nil {
		return nil, err
	}
	if p.Sig != sig {
		return nil, fmt.Errorf("interval: pyramid is stale (trace rewritten since it was built)")
	}
	return p, nil
}

// AttachPyramid installs (or, with nil, removes) the summary pyramid
// consulted by SummarizeWindow's auto and pyramid engines. Like
// SetFrameDecoder it must be called before the File is shared between
// goroutines; the field is read without synchronization.
func (f *File) AttachPyramid(p *Pyramid) { f.pyr = p }

// Pyramid returns the attached summary pyramid, or nil.
func (f *File) Pyramid() *Pyramid { return f.pyr }

// floorDivTime is floor division of a time by a positive power-of-two
// width, correct for negative times (so cell alignment is absolute,
// not dependent on the run's position on the time axis).
func floorDivTime(t clock.Time, w clock.Time) int64 {
	q := int64(t) / int64(w)
	if int64(t)%int64(w) != 0 && (int64(t) < 0) != (int64(w) < 0) {
		q--
	}
	return q
}

// mergeTop merges candidate top intervals into the canonical distinct
// top-k list: sort by topLess, drop duplicate tuples, truncate to k.
func mergeTop(cands []TopInterval, k int) []TopInterval {
	if len(cands) == 0 || k == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool { return topLess(cands[i], cands[j]) })
	out := cands[:0]
	for i, ti := range cands {
		if i > 0 && ti == out[len(out)-1] {
			continue
		}
		out = append(out, ti)
		if len(out) == k {
			break
		}
	}
	return out[:len(out):len(out)]
}
