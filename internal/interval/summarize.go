package interval

// SummarizeWindow answers a binned window query — per-bin busy time by
// type and by lane, start counts, peak concurrency, plus a window-wide
// top-k and lane list — from either of two engines that are proven
// byte-identical on every input:
//
//   - scan: decode every frame overlapping the window and accumulate,
//     the reference implementation (O(records in window)).
//   - pyramid: partition every bin into maximal aligned pyramid cells
//     plus at most two sub-base-width edge remainders, answer the
//     aligned interior from cell summaries, and decode frames only for
//     the remainders (O(bins) cells; zero frame decodes when the
//     window and bin bounds land on base-cell boundaries).
//
// Identity argument, in brief: busy overlap and start counts are
// additive over any partition of a bin; the peak concurrency of a bin
// is the supremum of the (right-continuous) concurrency step function
// over the bin, which is the max of the suprema over the partition's
// parts — cell MaxConc for whole cells, a local sweep over the edge
// frames for remainders; and a distinct interval in the window's top-k
// must be in the top-k of every cell it overlaps. Degenerate bins
// (window span < bin count) have boundary semantics the partition
// cannot reproduce, so the pyramid engine refuses them and auto falls
// back to scan.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"

	"tracefw/internal/clock"
	"tracefw/internal/events"
)

// SummaryEngine selects how SummarizeWindow answers.
type SummaryEngine int

const (
	// SummaryAuto answers from the pyramid when one is attached and
	// applicable, silently falling back to the scan engine otherwise.
	// The default.
	SummaryAuto SummaryEngine = iota
	// SummaryPyramid requires the pyramid; the query fails when no
	// usable pyramid is attached.
	SummaryPyramid
	// SummaryScan forces the frame-scan reference engine.
	SummaryScan
)

func (e SummaryEngine) String() string {
	switch e {
	case SummaryPyramid:
		return "pyramid"
	case SummaryScan:
		return "scan"
	default:
		return "auto"
	}
}

// ParseSummaryEngine maps the CLI/HTTP engine names.
func ParseSummaryEngine(s string) (SummaryEngine, error) {
	switch s {
	case "", "auto":
		return SummaryAuto, nil
	case "pyramid":
		return SummaryPyramid, nil
	case "scan":
		return SummaryScan, nil
	}
	return SummaryAuto, fmt.Errorf("interval: unknown summary engine %q (auto, pyramid, scan)", s)
}

// WindowSummaryOptions configures SummarizeWindow.
type WindowSummaryOptions struct {
	// Bins is the number of equal-width time buckets; must be >= 1.
	Bins int
	// Lo/Hi bound the window. Records are clipped to [Lo, Hi]; the
	// effective coverage is the half-open [Lo, Hi). Hi < Lo is an
	// error; callers clamp to run bounds first.
	Lo, Hi clock.Time
	// Engine picks the evaluator; see the SummaryEngine constants.
	Engine SummaryEngine
	// TopK asks for the window's k longest distinct busy intervals;
	// 0 disables the top list. The pyramid engine can only answer
	// TopK up to the pyramid's stored per-cell k.
	TopK int
	// Context, when non-nil, aborts the query between frames.
	Context context.Context
}

// BinSummary is one time bucket of a window summary. The maps hold
// only strictly positive entries, so two summaries are comparable with
// reflect.DeepEqual.
type BinSummary struct {
	// Start is the bucket's left bound.
	Start clock.Time
	// Records counts the records (any type, zero-duration included)
	// whose start time lies in the bucket.
	Records int64
	// PeakConc is the peak number of busy intervals simultaneously
	// open at any instant in the bucket.
	PeakConc int
	// BusyByType sums each type's overlap with the bucket (all types,
	// Running included — consumers filter).
	BusyByType map[events.Type]clock.Time
	// BusyByLane sums busy-interval overlap per (node, cpu) lane.
	BusyByLane map[Lane]clock.Time
}

// WindowSummary is the result of SummarizeWindow.
type WindowSummary struct {
	Lo, Hi clock.Time
	Bins   []BinSummary
	// Lanes lists every lane with busy time anywhere in the window,
	// sorted by (node, cpu).
	Lanes []Lane
	// Top is the window's k longest distinct busy intervals (empty
	// when TopK was 0).
	Top []TopInterval
	// Engine reports which engine answered: "pyramid" or "scan".
	Engine string
	// CellsUsed counts pyramid cells consulted (0 on the scan engine).
	CellsUsed int
	// FramesDecoded counts frames this query decoded: all overlapping
	// frames on the scan engine, only edge-remainder frames on the
	// pyramid engine.
	FramesDecoded int
}

// binBound mirrors the stats bucket ruler exactly: bound(i) = lo +
// (span/bins)*i + (span%bins)*i/bins, giving bound(0) = lo,
// bound(bins) = hi, and widths within one nanosecond of each other.
// The two copies must stay identical; the stats differential suite
// compares their outputs byte for byte.
func binBound(lo clock.Time, span int64, bins, i int) clock.Time {
	return lo + clock.Time((span/int64(bins))*int64(i)+(span%int64(bins))*int64(i)/int64(bins))
}

func binOf(lo clock.Time, span int64, bins int, t clock.Time) int {
	if span <= 0 {
		return 0
	}
	i := int(int64(t-lo) * int64(bins) / span)
	if i >= bins {
		i = bins - 1
	}
	for i > 0 && t < binBound(lo, span, bins, i) {
		i--
	}
	for i < bins-1 && t >= binBound(lo, span, bins, i+1) {
		i++
	}
	return i
}

// SummarizeWindow computes the window summary; see the package comment
// above for engine selection and the exactness contract.
func (f *File) SummarizeWindow(o WindowSummaryOptions) (*WindowSummary, error) {
	if o.Bins < 1 {
		return nil, fmt.Errorf("interval: summarize needs at least 1 bin, got %d", o.Bins)
	}
	if o.Hi < o.Lo {
		return nil, fmt.Errorf("interval: summarize window [%d, %d] is inverted", o.Lo, o.Hi)
	}
	if o.TopK < 0 {
		return nil, fmt.Errorf("interval: summarize top-k %d is negative", o.TopK)
	}
	switch o.Engine {
	case SummaryScan:
		return f.summarizeScan(o)
	case SummaryPyramid:
		if reason := f.pyramidUsable(o); reason != "" {
			return nil, fmt.Errorf("interval: pyramid engine unavailable: %s", reason)
		}
		return f.summarizePyramid(o)
	default:
		if f.pyramidUsable(o) == "" {
			return f.summarizePyramid(o)
		}
		return f.summarizeScan(o)
	}
}

// pyramidUsable reports why the pyramid engine cannot answer o, or ""
// when it can. Degenerate windows (span < bins means some buckets are
// empty; their boundary semantics depend on event positions, not
// ranges) and over-long top-k requests fall back to scan.
func (f *File) pyramidUsable(o WindowSummaryOptions) string {
	p := f.pyr
	if p == nil {
		return "no pyramid attached"
	}
	if len(p.Levels) == 0 {
		return "pyramid is empty"
	}
	if int64(o.Hi-o.Lo) < int64(o.Bins) {
		return "window narrower than bin count"
	}
	if o.TopK > p.TopK {
		return fmt.Sprintf("top-k %d exceeds pyramid's %d", o.TopK, p.TopK)
	}
	return ""
}

// summaryAcc accumulates one window summary under construction.
type summaryAcc struct {
	lo, hi clock.Time
	span   int64
	bins   []BinSummary
	tops   []TopInterval
}

func newSummaryAcc(o WindowSummaryOptions) *summaryAcc {
	a := &summaryAcc{lo: o.Lo, hi: o.Hi, span: int64(o.Hi - o.Lo), bins: make([]BinSummary, o.Bins)}
	for i := range a.bins {
		a.bins[i].Start = binBound(o.Lo, a.span, o.Bins, i)
	}
	return a
}

func (a *summaryAcc) addBusy(bi int, typ events.Type, v clock.Time) {
	b := &a.bins[bi]
	if b.BusyByType == nil {
		b.BusyByType = map[events.Type]clock.Time{}
	}
	b.BusyByType[typ] += v
}

func (a *summaryAcc) addLane(bi int, lane Lane, v clock.Time) {
	b := &a.bins[bi]
	if b.BusyByLane == nil {
		b.BusyByLane = map[Lane]clock.Time{}
	}
	b.BusyByLane[lane] += v
}

// finish derives the window-wide lane list and top-k.
func (a *summaryAcc) finish(o WindowSummaryOptions) *WindowSummary {
	laneSet := map[Lane]bool{}
	for i := range a.bins {
		for l := range a.bins[i].BusyByLane {
			laneSet[l] = true
		}
	}
	lanes := make([]Lane, 0, len(laneSet))
	for l := range laneSet {
		lanes = append(lanes, l)
	}
	sort.Slice(lanes, func(i, j int) bool { return lanes[i].key() < lanes[j].key() })
	return &WindowSummary{
		Lo: a.lo, Hi: a.hi,
		Bins:  a.bins,
		Lanes: lanes,
		Top:   mergeTop(a.tops, o.TopK),
	}
}

// summaryEvent is one endpoint of a clipped busy interval.
type summaryEvent struct {
	t clock.Time
	d int
}

func sortSummaryEvents(evs []summaryEvent) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].d < evs[j].d
	})
}

// summarizeScan is the reference engine: decode every frame
// overlapping the window and accumulate per-record. Its concurrency
// loop is a copy of the stats sweep so the two stay byte-identical.
func (f *File) summarizeScan(o WindowSummaryOptions) (*WindowSummary, error) {
	a := newSummaryAcc(o)
	t0, t1 := o.Lo, o.Hi
	// Count the frames this query materializes from metadata, so the
	// number is deterministic even when a shared cache absorbs decodes.
	wfes, err := f.FramesInWindow(t0, t1)
	if err != nil {
		return nil, err
	}
	nFrames := len(wfes)
	var evs []summaryEvent
	sc := f.ScanWindow(t0, t1)
	if o.Context != nil {
		sc.SetContext(o.Context)
	}
	var r Record
	for {
		if err := sc.NextRecordInto(&r); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, err
		}
		a.addRecord(&r, o)
		if s, e := max(r.Start, t0), min(r.Start+r.Dura, t1); s < e && busyType(r.Type) {
			evs = append(evs, summaryEvent{s, +1}, summaryEvent{e, -1})
		}
	}
	sortSummaryEvents(evs)
	a.sweepBins(evs)
	ws := a.finish(o)
	ws.Engine = "scan"
	ws.FramesDecoded = nFrames
	return ws, nil
}

// addRecord applies one record's count, busy, and top contributions to
// the whole window.
func (a *summaryAcc) addRecord(r *Record, o WindowSummaryOptions) {
	if r.Dura < 0 {
		return
	}
	s, e := r.Start, r.Start+r.Dura
	if s >= a.lo && s < a.hi {
		a.bins[binOf(a.lo, a.span, o.Bins, s)].Records++
	}
	cs, ce := max(s, a.lo), min(e, a.hi)
	if cs >= ce {
		return
	}
	busy := busyType(r.Type)
	lane := Lane{Node: r.Node, CPU: r.CPU}
	for bi := binOf(a.lo, a.span, o.Bins, cs); bi < o.Bins && binBound(a.lo, a.span, o.Bins, bi) < ce; bi++ {
		ov := min(ce, binBound(a.lo, a.span, o.Bins, bi+1)) - max(cs, binBound(a.lo, a.span, o.Bins, bi))
		a.addBusy(bi, r.Type, ov)
		if busy {
			a.addLane(bi, lane, ov)
		}
	}
	if busy && o.TopK > 0 {
		a.tops = append(a.tops, TopInterval{Start: s, Dura: r.Dura, Type: r.Type, Node: r.Node, CPU: r.CPU, Thread: r.Thread})
		if len(a.tops) >= 4*o.TopK {
			a.tops = mergeTop(a.tops, o.TopK)
		}
	}
}

// sweepBins fills PeakConc from a sorted global event list — the exact
// loop of the stats concurrency table, entry semantics included.
func (a *summaryAcc) sweepBins(evs []summaryEvent) {
	bins := len(a.bins)
	cur, ei := 0, 0
	for bi := 0; bi < bins; bi++ {
		hi := binBound(a.lo, a.span, bins, bi+1)
		if bi == bins-1 {
			hi = binBound(a.lo, a.span, bins, bins) + 1 // last bucket closed on the right
		}
		p := -1
		if ei >= len(evs) || evs[ei].t > binBound(a.lo, a.span, bins, bi) {
			p = cur
		}
		for ei < len(evs) && evs[ei].t < hi {
			at := evs[ei].t
			for ei < len(evs) && evs[ei].t == at {
				cur += evs[ei].d
				ei++
			}
			p = max(p, cur)
		}
		a.bins[bi].PeakConc = max(p, 0)
	}
}

// remSpan is one sub-base-width edge remainder of a bin.
type remSpan struct {
	bin    int
	r0, r1 clock.Time
}

// summarizePyramid is the O(bins) engine; see the package comment for
// the partition and the identity argument.
func (f *File) summarizePyramid(o WindowSummaryOptions) (*WindowSummary, error) {
	p := f.pyr
	a := newSummaryAcc(o)
	w := int64(p.BaseWidth)
	cellsUsed := 0
	var rems []remSpan
	for bi := 0; bi < o.Bins; bi++ {
		b0 := a.bins[bi].Start
		b1 := binBound(a.lo, a.span, o.Bins, bi+1)
		// Align the interior to the base grid: ia rounds b0 up, ib
		// rounds b1 down.
		ia := clock.Time(floorDivTime(b0+clock.Time(w-1), p.BaseWidth) * w)
		ib := clock.Time(floorDivTime(b1, p.BaseWidth) * w)
		if ia >= ib {
			rems = append(rems, remSpan{bin: bi, r0: b0, r1: b1})
			a.bins[bi].PeakConc = -1
			continue
		}
		if b0 < ia {
			rems = append(rems, remSpan{bin: bi, r0: b0, r1: ia})
		}
		if ib < b1 {
			rems = append(rems, remSpan{bin: bi, r0: ib, r1: b1})
		}
		pk := -1
		x := ia
		for x < ib {
			lvl, idx := p.coarsestCell(x, ib)
			cellsUsed++
			if c := p.Levels[lvl].Cell(idx); c != nil {
				a.bins[bi].Records += c.Records
				pk = max(pk, c.MaxConc)
				for _, tb := range c.ByType {
					a.addBusy(bi, tb.Type, tb.Busy)
				}
				for _, lb := range c.ByLane {
					a.addLane(bi, lb.Lane, lb.Busy)
				}
				if o.TopK > 0 && len(c.Top) > 0 {
					a.tops = append(a.tops, c.Top...)
				}
			} else {
				pk = max(pk, 0)
			}
			x += p.Levels[lvl].Width
		}
		a.bins[bi].PeakConc = pk
	}
	framesDecoded, err := f.resolveRemainders(a, rems, o)
	if err != nil {
		return nil, err
	}
	// Bins whose peak never got a contribution (possible only when the
	// whole bin was remainders that found no events) floor at zero,
	// matching the scan sweep's final clamp.
	for i := range a.bins {
		a.bins[i].PeakConc = max(a.bins[i].PeakConc, 0)
	}
	if o.TopK > 0 {
		a.tops = mergeTop(a.tops, o.TopK)
	}
	ws := a.finish(o)
	ws.Engine = "pyramid"
	ws.CellsUsed = cellsUsed
	ws.FramesDecoded = framesDecoded
	return ws, nil
}

// coarsestCell returns the deepest (widest) level whose cell starts at
// x and ends at or before limit, with x's absolute cell index there.
// x must be base-aligned and < limit.
func (p *Pyramid) coarsestCell(x, limit clock.Time) (level int, idx int64) {
	idx = floorDivTime(x, p.BaseWidth)
	for level+1 < len(p.Levels) {
		w := p.Levels[level+1].Width
		if idx&1 != 0 || x+w > limit {
			break
		}
		idx >>= 1
		level++
	}
	return level, idx
}

// resolveRemainders answers the edge spans from frame decodes: every
// frame overlapping a remainder is decoded once (through the file's
// frame-decode hook, so a serving cache absorbs repeats), its records
// are clipped to the window, and counts, busy overlap, top candidates,
// and a local concurrency sweep are applied per span.
func (f *File) resolveRemainders(a *summaryAcc, rems []remSpan, o WindowSummaryOptions) (int, error) {
	if len(rems) == 0 {
		return 0, nil
	}
	type frameRef struct {
		fe   FrameEntry
		recs []Record
	}
	frames := map[int64]*frameRef{}
	order := []int64{}
	spanFrames := make([][]int64, len(rems))
	// One directory walk answers every remainder: enumerate the frames
	// overlapping the remainders' hull once, then filter per span in
	// memory with FramesInWindow's exact predicate (the window is
	// closed; [r0, r1) needs End >= r0 and Start <= r1-1). A walk per
	// remainder would re-read directory headers from disk O(bins)
	// times and dominate deep-zoom queries.
	hullLo, hullHi := rems[0].r0, rems[0].r1
	for _, rs := range rems[1:] {
		hullLo, hullHi = min(hullLo, rs.r0), max(hullHi, rs.r1)
	}
	hull, err := f.FramesInWindow(hullLo, hullHi-1)
	if err != nil {
		return 0, err
	}
	for i, rs := range rems {
		for _, fe := range hull {
			if fe.End < rs.r0 || fe.Start > rs.r1-1 {
				continue
			}
			if _, ok := frames[fe.Offset]; !ok {
				frames[fe.Offset] = &frameRef{fe: fe}
				order = append(order, fe.Offset)
			}
			spanFrames[i] = append(spanFrames[i], fe.Offset)
		}
	}
	for _, off := range order {
		if o.Context != nil {
			if err := o.Context.Err(); err != nil {
				return 0, err
			}
		}
		fr := frames[off]
		recs, err := f.DecodeFrame(fr.fe)
		if err != nil {
			return 0, err
		}
		fr.recs = recs
	}
	var evs []summaryEvent
	for i, rs := range rems {
		evs = evs[:0]
		for _, off := range spanFrames[i] {
			for ri := range frames[off].recs {
				r := &frames[off].recs[ri]
				if r.Dura < 0 {
					continue
				}
				s, e := r.Start, r.Start+r.Dura
				if s >= rs.r0 && s < rs.r1 {
					a.bins[rs.bin].Records++
				}
				cs, ce := max(s, a.lo), min(e, a.hi)
				if cs >= ce {
					continue
				}
				busy := busyType(r.Type)
				lo, hi := max(cs, rs.r0), min(ce, rs.r1)
				if lo < hi {
					a.addBusy(rs.bin, r.Type, hi-lo)
					if busy {
						a.addLane(rs.bin, Lane{Node: r.Node, CPU: r.CPU}, hi-lo)
					}
				}
				if busy && ce > rs.r0 && cs < rs.r1 {
					evs = append(evs, summaryEvent{cs, +1}, summaryEvent{ce, -1})
					if o.TopK > 0 && lo < hi {
						a.tops = append(a.tops, TopInterval{Start: s, Dura: r.Dura, Type: r.Type, Node: r.Node, CPU: r.CPU, Thread: r.Thread})
					}
				}
			}
		}
		// Local sweep: entry concurrency at r0 (all events at or before
		// it net out to the covering count), then the peak inside.
		sortSummaryEvents(evs)
		cur, ei := 0, 0
		for ei < len(evs) && evs[ei].t <= rs.r0 {
			cur += evs[ei].d
			ei++
		}
		pk := cur
		for ei < len(evs) && evs[ei].t < rs.r1 {
			cur += evs[ei].d
			ei++
			pk = max(pk, cur)
		}
		a.bins[rs.bin].PeakConc = max(a.bins[rs.bin].PeakConc, pk)
	}
	return len(order), nil
}
