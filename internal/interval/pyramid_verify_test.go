package interval

// Tests for the sampled cross-validation used by utecheck: a faithful
// pyramid verifies, a doctored one is caught even though its encoding
// (and, once re-encoded, its CRCs) are perfectly valid.

import (
	"strings"
	"testing"

	"tracefw/internal/clock"
)

func TestVerifyPyramidOK(t *testing.T) {
	sb, _ := writePyrFile(t, 5, 900, CurrentHeaderVersion)
	f, err := NewFile(sb)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := buildAttached(t, f, PyramidOptions{BaseCells: 64, TopK: 4})

	n, err := f.VerifyPyramid(p, VerifyPyramidOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no cells checked")
	}
	if f.Pyramid() != p {
		t.Fatal("attached pyramid not restored")
	}
	// A tighter sample bound checks fewer cells but still some.
	n2, err := f.VerifyPyramid(p, VerifyPyramidOptions{MaxCells: 3})
	if err != nil {
		t.Fatal(err)
	}
	if n2 == 0 || n2 > n {
		t.Fatalf("MaxCells=3 checked %d cells (full sample %d)", n2, n)
	}
}

func TestVerifyPyramidCatchesDoctoredCells(t *testing.T) {
	sb, _ := writePyrFile(t, 6, 900, CurrentHeaderVersion)
	f, err := NewFile(sb)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := buildAttached(t, f, PyramidOptions{BaseCells: 64, TopK: 4})

	// Doctor the first base cell — sampling always visits index 0.
	if len(p.Levels) == 0 || len(p.Levels[0].Cells) == 0 {
		t.Fatal("pyramid has no base cells")
	}
	p.Levels[0].Cells[0].Records++
	if _, err := f.VerifyPyramid(p, VerifyPyramidOptions{}); err == nil {
		t.Fatal("doctored record count not caught")
	} else if !strings.Contains(err.Error(), "disagree") {
		t.Fatalf("unexpected error: %v", err)
	}
	p.Levels[0].Cells[0].Records--

	// Doctoring a busy-time histogram entry is caught too.
	c := &p.Levels[0].Cells[0]
	if len(c.ByType) == 0 {
		t.Fatal("first base cell has no busy time")
	}
	c.ByType[0].Busy += clock.Time(1)
	if _, err := f.VerifyPyramid(p, VerifyPyramidOptions{}); err == nil {
		t.Fatal("doctored busy time not caught")
	}
}

func TestVerifyPyramidEmpty(t *testing.T) {
	sb, _ := writePyrFile(t, 7, 0, CurrentHeaderVersion)
	f, err := NewFile(sb)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := buildAttached(t, f, PyramidOptions{})
	n, err := f.VerifyPyramid(p, VerifyPyramidOptions{})
	if err != nil || n != 0 {
		t.Fatalf("empty pyramid: %d cells, %v", n, err)
	}
}
