package interval

import (
	"errors"
	"os"
	"path/filepath"
	"io"
	"reflect"
	"sync"
	"testing"
)

// writeTempFile puts an in-memory trace on disk for the path-based API.
func writeTempFile(t *testing.T, sb *SeekBuffer) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "trace.ute")
	if err := os.WriteFile(p, sb.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestOpenMatchesDeprecatedWrappers pins the migration contract: the
// unified Open/NewFile and the deprecated ReadHeader/OpenSalvage
// wrappers see exactly the same file.
func TestOpenMatchesDeprecatedWrappers(t *testing.T) {
	sb, recs := writeRandomFile(t, 11, 400, CurrentHeaderVersion)
	p := writeTempFile(t, sb)

	f1, err := Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Close()
	f2, err := ReadHeader(NewSeekBufferFrom(sb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	all1, err := f1.Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	all2, err := f2.Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all1, all2) || len(all1) != len(recs) {
		t.Fatalf("Open and ReadHeader scans disagree (%d vs %d records)", len(all1), len(all2))
	}

	f3, res, err := OpenSalvage(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f3.Close()
	var res2 SalvageResult
	f4, err := Open(p, WithSalvage(&res2))
	if err != nil {
		t.Fatal(err)
	}
	defer f4.Close()
	if res.Report.Clean() != res2.Report.Clean() || len(res.Frames) != len(res2.Frames) {
		t.Fatalf("OpenSalvage and Open(WithSalvage) disagree: %d vs %d frames",
			len(res.Frames), len(res2.Frames))
	}
	if !res2.Report.Clean() {
		t.Fatalf("salvage of an undamaged file reports damage: %+v", res2.Report)
	}
}

// TestWithVerifyChecksums flips one payload byte on a v3 file (fixed-
// size record encoding, so the damage stays decodable) and checks that
// the default Open rejects the frame while WithVerifyChecksums(false)
// reads through it.
func TestWithVerifyChecksums(t *testing.T) {
	sb, _ := writeRandomFile(t, 12, 300, 3)
	clean := openFile(t, sb)
	frames, err := clean.Frames()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 {
		t.Fatal("no frames")
	}
	damaged := append([]byte(nil), sb.Bytes()...)
	damaged[frames[0].Offset+2] ^= 0xff

	f, err := NewFile(NewSeekBufferFrom(damaged))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.DecodeFrame(frames[0]); err == nil {
		t.Fatal("default open decoded a frame with a bad payload checksum")
	}

	f2, err := NewFile(NewSeekBufferFrom(damaged), WithVerifyChecksums(false))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := f2.DecodeFrame(frames[0])
	if err != nil {
		t.Fatalf("WithVerifyChecksums(false) still fails the read: %v", err)
	}
	if len(recs) != int(frames[0].Records) {
		t.Fatalf("got %d records, frame claims %d", len(recs), frames[0].Records)
	}

	// The option must not bend salvage: its own checksum pass still
	// rejects the damaged frame.
	var res SalvageResult
	if _, err := NewFile(NewSeekBufferFrom(damaged), WithVerifyChecksums(false), WithSalvage(&res)); err != nil {
		t.Fatal(err)
	}
	if res.Report.Clean() {
		t.Fatal("salvage missed the payload damage despite WithVerifyChecksums(false)")
	}
}

// TestCloseIdempotent: Close is safe to call twice and from many
// goroutines at once, and afterwards every read path fails with
// ErrClosed rather than a nil-map panic or an os.ErrClosed leak.
func TestCloseIdempotent(t *testing.T) {
	sb, _ := writeRandomFile(t, 13, 300, CurrentHeaderVersion)
	p := writeTempFile(t, sb)
	f, err := Open(p)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := f.Frames()
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := f.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := f.Close(); err != nil {
		t.Fatalf("third Close: %v", err)
	}

	if _, err := f.ReadFrame(frames[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadFrame after Close: %v, want ErrClosed", err)
	}
	if _, err := f.ReadFrameAt(frames[0], nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadFrameAt after Close: %v, want ErrClosed", err)
	}
	if _, err := f.DecodeFrameDirect(frames[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("DecodeFrameDirect after Close: %v, want ErrClosed", err)
	}
	if _, err := f.Scan().All(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Scan after Close: %v, want ErrClosed", err)
	}
}

// TestCloseMidScanIsErrClosed closes the file while a scan is in
// progress on another goroutine: the scan must end with ErrClosed, not
// a raw *os.PathError or a crash.
func TestCloseMidScanIsErrClosed(t *testing.T) {
	sb, _ := writeRandomFile(t, 14, 2000, CurrentHeaderVersion)
	p := writeTempFile(t, sb)
	f, err := Open(p)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		s := f.Scan()
		var n int
		for {
			_, err := s.NextRecord()
			if err != nil {
				done <- err
				return
			}
			n++
			if n == 1 {
				close(started)
			}
		}
	}()
	<-started
	f.Close()
	err = <-done
	// The race is real: the scan may finish cleanly (io.EOF surfaces as
	// a nil-error stop inside All; NextRecord returns io.EOF) before the
	// close lands. Anything else must be ErrClosed.
	if !errors.Is(err, ErrClosed) && !errors.Is(err, io.EOF) {
		t.Fatalf("scan ended with %v, want ErrClosed or EOF", err)
	}
}

// TestPreloadedMetadataOps: after Preload, metadata operations work on
// a closed file too (they touch no I/O) and agree with the unpreloaded
// answers.
func TestPreloadedMetadataOps(t *testing.T) {
	sb, _ := writeRandomFile(t, 15, 900, CurrentHeaderVersion)
	f := openFile(t, sb)
	framesBefore, err := f.Frames()
	if err != nil {
		t.Fatal(err)
	}
	s0, e0, n0, err := f.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Preload(); err != nil {
		t.Fatal(err)
	}
	if !f.Preloaded() {
		t.Fatal("Preloaded() false after Preload")
	}
	framesAfter, err := f.Frames()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(framesBefore, framesAfter) {
		t.Fatal("Preload changed the frame list")
	}
	s1, e1, n1, err := f.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s0 != s1 || e0 != e1 || n0 != n1 {
		t.Fatalf("Preload changed Stats: [%v %v] %d vs [%v %v] %d", s0, e0, n0, s1, e1, n1)
	}
	// Window metadata from the resident chain.
	fes, err := f.FramesInWindow(s1, e1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fes) != len(framesAfter) {
		t.Fatalf("full-run window returns %d frames, file has %d", len(fes), len(framesAfter))
	}
	if _, ok, err := f.FrameContaining(s1); err != nil || !ok {
		t.Fatalf("FrameContaining(start) after Preload: ok=%v err=%v", ok, err)
	}
}
