//go:build race

package interval

// raceEnabled reports whether the race detector is on; its
// instrumentation allocates, so allocation-count tests skip under it.
const raceEnabled = true
