package interval

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"reflect"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/profile"
	"tracefw/internal/xrand"
)

// Tests for the version-4 compact frame encoding: cross-version
// round-trip equivalence, size reduction, the zero-alloc scan path,
// and salvage's exact-decode requirement on v4 frames.

// randomMixedRecords builds an end-ordered record stream that stresses
// every v4 encoder path: plain records, zero-extra records, vector
// records (MPI_Waitall), negative start times, and large field values
// that need long varints.
func randomMixedRecords(rng *xrand.Rand, n int) []Record {
	recs := make([]Record, n)
	end := int64(-50 * int64(clock.Millisecond)) // start in negative time
	for i := range recs {
		// Monotone non-decreasing end times, as the writer requires.
		end += rng.Int63n(int64(clock.Millisecond))
		dura := rng.Int63n(int64(10 * clock.Millisecond))
		r := Record{
			Bebits: profile.Bebits(rng.Intn(4)),
			Start:  clock.Time(end - dura),
			Dura:   clock.Time(dura),
			CPU:    uint16(rng.Intn(5)),
			Node:   uint16(rng.Intn(3)),
			Thread: uint16(rng.Intn(6)),
		}
		switch rng.Intn(4) {
		case 0: // no extras
			r.Type = events.EvRunning
		case 1: // vector record
			r.Type = events.EvMPIWaitall
			nv := 3 * rng.Intn(5)
			if nv > 0 {
				vec := make([]uint64, nv)
				for j := range vec {
					vec[j] = rng.Uint64() >> uint(rng.Intn(64))
				}
				r.Vec = vec
			}
			r.Extra = []uint64{uint64(nv / 3), rng.Uint64() >> 40}
		default:
			r.Type = events.EvMPISend
			r.Extra = []uint64{
				rng.Uint64() >> uint(rng.Intn(64)), // any magnitude
				rng.Uint64() >> 56,                 // small
				uint64(i),
				rng.Uint64(), // full 64-bit
				0,
				7,
			}
		}
		recs[i] = r
	}
	return recs
}

// reencodeRecords writes recs under the given header version with small
// frames and returns the encoded file.
func reencodeRecords(t *testing.T, recs []Record, version uint32) *SeekBuffer {
	t.Helper()
	hdr := testHeader()
	hdr.HeaderVersion = version
	sb := NewSeekBuffer()
	w, err := NewWriter(sb, hdr, WriterOptions{FrameBytes: 512, FramesPerDir: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Add(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return sb
}

// scanAll decodes every record through the sequential scanner.
func scanAll(t *testing.T, sb *SeekBuffer) []Record {
	t.Helper()
	recs, err := openFile(t, sb).Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestCrossVersionRoundTrip is the cross-version property test: the
// same record stream written under every header version decodes to the
// identical Record sequence, through both the scanner and the parallel
// frame map.
func TestCrossVersionRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		rng := xrand.New(seed)
		want := randomMixedRecords(rng, 300+int(seed)*100)
		var ref []Record
		for v := uint32(1); v <= CurrentHeaderVersion; v++ {
			sb := reencodeRecords(t, want, v)
			got := scanAll(t, sb)
			if len(got) != len(want) {
				t.Fatalf("seed %d v%d: %d records, want %d", seed, v, len(got), len(want))
			}
			for i := range got {
				if !reflect.DeepEqual(normalize(got[i]), normalize(want[i])) {
					t.Fatalf("seed %d v%d record %d:\n got %+v\nwant %+v", seed, v, i, got[i], want[i])
				}
			}
			if v == 1 {
				ref = got
			} else if !reflect.DeepEqual(got, ref) {
				t.Fatalf("seed %d: v%d decode differs from v1", seed, v)
			}
			// MapFrames must agree with the sequential scan.
			var mapped []Record
			err := MapFrames(openFile(t, sb), MapOptions{Parallel: 2},
				func(fe FrameEntry, recs []Record) ([]Record, error) { return recs, nil },
				func(fe FrameEntry, recs []Record) error { mapped = append(mapped, recs...); return nil })
			if err != nil {
				t.Fatalf("seed %d v%d: MapFrames: %v", seed, v, err)
			}
			if !reflect.DeepEqual(mapped, got) {
				t.Fatalf("seed %d v%d: MapFrames records differ from scan", seed, v)
			}
		}
	}
}

// TestV4SmallerThanV3 checks the headline claim: the compact encoding
// shrinks files by at least 30% on a representative record mix.
func TestV4SmallerThanV3(t *testing.T) {
	rng := xrand.New(42)
	recs := randomMixedRecords(rng, 2000)
	v3 := len(reencodeRecords(t, recs, 3).Bytes())
	v4 := len(reencodeRecords(t, recs, 4).Bytes())
	t.Logf("v3=%d bytes, v4=%d bytes (%.1f%%)", v3, v4, 100*float64(v4)/float64(v3))
	if float64(v4) > 0.70*float64(v3) {
		t.Fatalf("v4 file is %d bytes, v3 is %d: want at least 30%% smaller", v4, v3)
	}
}

// TestV4WindowScanMatchesSequential cross-checks windowed access
// against a filtered sequential scan on a v4 file (frame-relative
// deltas must not disturb window selection).
func TestV4WindowScanMatchesSequential(t *testing.T) {
	sb, _ := writeRandomFile(t, 9, 1200, CurrentHeaderVersion)
	f := openFile(t, sb)
	all := scanAll(t, sb)
	lo, hi := 20*clock.Millisecond, 60*clock.Millisecond
	var want []Record
	for _, r := range all {
		if r.End() >= lo && r.Start <= hi {
			want = append(want, r)
		}
	}
	sc := f.ScanWindow(lo, hi)
	var got []Record
	for {
		r, err := sc.NextRecord()
		if err != nil {
			break
		}
		if r.End() >= lo && r.Start <= hi {
			got = append(got, r)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("window scan: %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(normalize(got[i]), normalize(want[i])) {
			t.Fatalf("window record %d differs", i)
		}
	}
}

// TestV4ScanAllocations locks in the zero-alloc scan path: a full
// NextRecordInto pass over thousands of records must cost only the
// handful of per-frame buffer reads, and the arena-backed NextRecord
// path must amortize its Extra/Vec allocations across many records. A
// per-record allocation regression shows up here as thousands.
func TestV4ScanAllocations(t *testing.T) {
	sb, recs := writeRandomFile(t, 11, 5000, CurrentHeaderVersion)
	f := openFile(t, sb)
	frames, err := f.Frames()
	if err != nil {
		t.Fatal(err)
	}
	// The scan costs O(frames) allocations (frame reads, directory
	// walks), never O(records).
	budget := float64(4*len(frames) + 64)
	var rec Record
	// Warm the file's frame buffer and the record's slice capacity.
	sc := f.Scan()
	for sc.NextRecordInto(&rec) == nil {
	}
	into := testing.AllocsPerRun(3, func() {
		sc := f.Scan()
		for sc.NextRecordInto(&rec) == nil {
		}
	})
	if into > budget {
		t.Fatalf("NextRecordInto full scan: %.0f allocs for %d records in %d frames", into, len(recs), len(frames))
	}
	owned := testing.AllocsPerRun(3, func() {
		sc := f.Scan()
		for {
			if _, err := sc.NextRecord(); err != nil {
				break
			}
		}
	})
	// NextRecord additionally allocates arena chunks, amortized over
	// ~hundreds of records each.
	if owned > budget+float64(len(recs))/100 {
		t.Fatalf("NextRecord full scan: %.0f allocs for %d records in %d frames", owned, len(recs), len(frames))
	}
	t.Logf("full-scan allocs over %d records: NextRecordInto=%.0f NextRecord=%.0f", len(recs), into, owned)
}

// TestV4SalvageRejectsUndecodableFrame plants a corrupted varint stream
// behind a *valid* CRC (checksums recomputed over the damaged bytes) in
// one v4 frame. The CRC no longer protects the frame, so salvage must
// fall back on the exact-decode rule: the frame is dropped, every other
// frame survives, and Validate rejects the file.
func TestV4SalvageRejectsUndecodableFrame(t *testing.T) {
	sb, _ := writeRandomFile(t, 13, 600, CurrentHeaderVersion)
	data := append([]byte(nil), sb.Bytes()...)

	f := openFile(t, sb)
	frames, err := f.Frames()
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := f.Dirs()
	if err != nil {
		t.Fatal(err)
	}
	d := dirs[0]
	fe := d.Entries[0]

	// An impossible dictionary count: 0xff 0xff 0x7f decodes to a
	// number far past the frame's own size, so cursor init must fail.
	data[fe.Offset], data[fe.Offset+1], data[fe.Offset+2] = 0xff, 0xff, 0x7f
	// Recompute the frame CRC over the damaged bytes and patch it into
	// the directory entry, then fix the directory checksum too.
	sum := crc32.Checksum(data[fe.Offset:fe.Offset+int64(fe.Bytes)], crcTable)
	entOff := d.Offset + int64(dirHeaderSize(CurrentHeaderVersion))
	binary.LittleEndian.PutUint32(data[entOff+32:], sum)
	entRaw := data[entOff : entOff+int64(len(d.Entries)*entrySize(CurrentHeaderVersion))]
	dsum := dirChecksum(uint32(len(d.Entries)), d.Start, d.End, uint64(d.Records), entRaw)
	binary.LittleEndian.PutUint32(data[d.Offset+48:], dsum)

	cf, err := ReadHeader(NewSeekBufferFrom(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cf.Validate(nil); err == nil {
		t.Fatal("Validate accepted a frame whose varint stream does not decode")
	}
	sv := cf.Salvage()
	if sv.Report.Clean() {
		t.Fatal("salvage reported a clean file")
	}
	if len(sv.Frames) != len(frames)-1 {
		t.Fatalf("salvage recovered %d frames, want %d", len(sv.Frames), len(frames)-1)
	}
	for _, got := range sv.Frames {
		if got.Offset == fe.Offset {
			t.Fatalf("salvage recovered the undecodable frame at %d", fe.Offset)
		}
	}
	// Repair must produce a valid file from the surviving frames.
	out := NewSeekBuffer()
	if _, err := Repair(cf, sv, out, WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	rf, err := ReadHeader(NewSeekBufferFrom(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rf.Validate(nil); err != nil {
		t.Fatalf("repaired file fails validation: %v", err)
	}
}

// TestV4FrameSizes sanity-checks encodedFrameSizes, the helper behind
// `utedump -sizes`: per-frame byte counts must sum to the directory
// entries' Bytes fields, and record counts to the file total.
func TestV4FrameSizes(t *testing.T) {
	for _, v := range []uint32{3, CurrentHeaderVersion} {
		sb, recs := writeRandomFile(t, 17, 700, v)
		f := openFile(t, sb)
		frames, err := f.Frames()
		if err != nil {
			t.Fatal(err)
		}
		var bytes, n int64
		for _, fe := range frames {
			bytes += int64(fe.Bytes)
			n += int64(fe.Records)
		}
		if n != int64(len(recs)) {
			t.Fatalf("v%d: frames claim %d records, wrote %d", v, n, len(recs))
		}
		if bytes <= 0 {
			t.Fatalf("v%d: zero frame bytes", v)
		}
		_ = fmt.Sprintf("%d", bytes)
	}
}
