//go:build !race

package interval

const raceEnabled = false
