package interval

// Pyramid construction: one sequential pass over the file accumulates
// the base level (busy histograms, start counts, top-k candidates, and
// a global concurrency event sweep), and every higher level folds pairs
// of children. All accumulation is integer nanoseconds, so the result
// is a pure function of the record set — the property the differential
// suite and utecheck's cell recomputation rely on.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"

	"tracefw/internal/clock"
	"tracefw/internal/events"
)

// PyramidOptions tunes BuildPyramid.
type PyramidOptions struct {
	// BaseCells targets the finest level's cell count: the base width
	// is the smallest power of two covering the run in at most
	// BaseCells cells. <= 0 means 4096.
	BaseCells int
	// TopK is the per-cell top-interval list length. <= 0 means 8;
	// capped at pyrMaxTopK.
	TopK int
	// Context, when non-nil, aborts the build between frames.
	Context context.Context
}

// busyType reports whether a record type counts as a busy interval for
// lane time, concurrency, and top-k: everything except the synthetic
// Running background state and clock records. This mirrors the
// exclusions of stats.TimeResolved.
func busyType(t events.Type) bool {
	return t != events.EvRunning && t != events.EvGlobalClock
}

// pyrAcc is one cell's accumulation state during a build.
type pyrAcc struct {
	records int64
	maxConc int
	byType  map[events.Type]clock.Time
	byLane  map[uint32]clock.Time
	top     []TopInterval
}

func (a *pyrAcc) addTop(ti TopInterval, k int) {
	a.top = append(a.top, ti)
	// Bound the candidate list: compaction keeps at most k distinct
	// entries, and a merge of tops-of-subsets loses nothing (an entry
	// outside a subset's top-k is outside the whole set's top-k).
	if len(a.top) >= 4*k {
		a.top = mergeTop(a.top, k)
	}
}

// seal converts accumulation state into the canonical cell form.
func (a *pyrAcc) seal(k int) PyramidCell {
	c := PyramidCell{Records: a.records, MaxConc: a.maxConc}
	if len(a.byType) > 0 {
		c.ByType = make([]TypeBusy, 0, len(a.byType))
		for t, v := range a.byType {
			c.ByType = append(c.ByType, TypeBusy{Type: t, Busy: v})
		}
		sort.Slice(c.ByType, func(i, j int) bool { return c.ByType[i].Type < c.ByType[j].Type })
	}
	if len(a.byLane) > 0 {
		c.ByLane = make([]LaneBusy, 0, len(a.byLane))
		for lk, v := range a.byLane {
			c.ByLane = append(c.ByLane, LaneBusy{Lane: Lane{Node: uint16(lk >> 16), CPU: uint16(lk)}, Busy: v})
		}
		sort.Slice(c.ByLane, func(i, j int) bool { return c.ByLane[i].Lane.key() < c.ByLane[j].Lane.key() })
	}
	c.Top = mergeTop(a.top, k)
	return c
}

// BuildPyramid computes the summary pyramid of f from its frames. The
// file is scanned once; the pyramid is bound to the file's current
// frame directory through its signature.
func BuildPyramid(f *File, opts PyramidOptions) (*Pyramid, error) {
	baseCells := opts.BaseCells
	if baseCells <= 0 {
		baseCells = 4096
	}
	topK := opts.TopK
	if topK <= 0 {
		topK = 8
	}
	if topK > pyrMaxTopK {
		topK = pyrMaxTopK
	}
	sig, err := f.Signature()
	if err != nil {
		return nil, err
	}
	first, last, nrec, err := f.Stats()
	if err != nil {
		return nil, err
	}
	p := &Pyramid{BaseWidth: 1, TopK: topK, Sig: sig}
	if nrec == 0 {
		return p, nil
	}
	span := int64(last - first)
	w := clock.Time(1)
	for span/int64(w) >= int64(baseCells) {
		w <<= 1
	}
	p.BaseWidth = w
	firstCell := floorDivTime(first, w)
	lastCell := floorDivTime(last, w)
	count := lastCell - firstCell + 1
	if count <= 0 || count > int64(2*baseCells)+2 {
		return nil, fmt.Errorf("interval: pyramid base range [%d,%d] is inconsistent", firstCell, lastCell)
	}
	accs := make([]pyrAcc, count)
	type ev struct {
		t clock.Time
		d int
	}
	var evs []ev

	sc := f.Scan()
	if opts.Context != nil {
		sc.SetContext(opts.Context)
	}
	var r Record
	for {
		if err := sc.NextRecordInto(&r); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, err
		}
		if r.Dura < 0 {
			// A negative duration cannot come from the writer; skip the
			// record entirely, exactly as every clipped consumer does.
			continue
		}
		s, e := r.Start, r.Start+r.Dura
		if ci := floorDivTime(s, w) - firstCell; ci >= 0 && ci < count {
			accs[ci].records++
		}
		if e <= s {
			continue
		}
		busy := busyType(r.Type)
		if busy {
			evs = append(evs, ev{s, +1}, ev{e, -1})
		}
		lane := uint32(r.Node)<<16 | uint32(r.CPU)
		ti := TopInterval{Start: s, Dura: r.Dura, Type: r.Type, Node: r.Node, CPU: r.CPU, Thread: r.Thread}
		lo, hi := floorDivTime(s, w), floorDivTime(e-1, w)
		for ci := lo; ci <= hi; ci++ {
			idx := ci - firstCell
			if idx < 0 || idx >= count {
				continue
			}
			a := &accs[idx]
			cLo := clock.Time(ci) * w
			ov := min(e, cLo+w) - max(s, cLo)
			if a.byType == nil {
				a.byType = map[events.Type]clock.Time{}
			}
			a.byType[r.Type] += ov
			if busy {
				if a.byLane == nil {
					a.byLane = map[uint32]clock.Time{}
				}
				a.byLane[lane] += ov
				a.addTop(ti, topK)
			}
		}
	}

	// Peak concurrency per base cell from the global event sweep; ends
	// sort before starts at equal times (intervals are half-open).
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].d < evs[j].d
	})
	cur, ei := 0, 0
	for idx := int64(0); idx < count; idx++ {
		cLo := clock.Time(firstCell+idx) * w
		cHi := cLo + w
		for ei < len(evs) && evs[ei].t <= cLo {
			cur += evs[ei].d
			ei++
		}
		pk := cur
		for ei < len(evs) && evs[ei].t < cHi {
			cur += evs[ei].d
			ei++
			pk = max(pk, cur)
		}
		accs[idx].maxConc = pk
	}

	base := PyramidLevel{Width: w, First: firstCell, Cells: make([]PyramidCell, count)}
	for i := range accs {
		base.Cells[i] = accs[i].seal(topK)
	}
	p.Levels = []PyramidLevel{base}
	for len(p.Levels[len(p.Levels)-1].Cells) > 1 && len(p.Levels) < pyrMaxLevels {
		p.Levels = append(p.Levels, foldLevel(&p.Levels[len(p.Levels)-1], topK))
	}
	return p, nil
}

// foldLevel builds the next-coarser level: parent cell i merges
// children 2i and 2i+1 (absolute indices). Sums stay sums, the peak is
// the max of the children's peaks, and the distinct top-k merge is
// exact because a parent's top interval overlaps one of its children.
func foldLevel(child *PyramidLevel, topK int) PyramidLevel {
	// Arithmetic shift is floor division, so negative indices pair up
	// correctly too.
	pf := child.First >> 1
	pl := (child.First + int64(len(child.Cells)) - 1) >> 1
	out := PyramidLevel{Width: child.Width * 2, First: pf, Cells: make([]PyramidCell, pl-pf+1)}
	for i := range out.Cells {
		pi := pf + int64(i)
		a := child.Cell(2 * pi)
		b := child.Cell(2*pi + 1)
		out.Cells[i] = mergeCells(a, b, topK)
	}
	return out
}

func mergeCells(a, b *PyramidCell, topK int) PyramidCell {
	if a == nil && b == nil {
		return PyramidCell{}
	}
	if b == nil {
		return copyCell(a)
	}
	if a == nil {
		return copyCell(b)
	}
	c := PyramidCell{Records: a.Records + b.Records, MaxConc: max(a.MaxConc, b.MaxConc)}
	c.ByType = mergeTypeBusy(a.ByType, b.ByType)
	c.ByLane = mergeLaneBusy(a.ByLane, b.ByLane)
	c.Top = mergeTop(append(append([]TopInterval{}, a.Top...), b.Top...), topK)
	return c
}

func copyCell(a *PyramidCell) PyramidCell {
	c := *a
	c.ByType = append([]TypeBusy(nil), a.ByType...)
	c.ByLane = append([]LaneBusy(nil), a.ByLane...)
	c.Top = append([]TopInterval(nil), a.Top...)
	return c
}

func mergeTypeBusy(a, b []TypeBusy) []TypeBusy {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make([]TypeBusy, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i].Type < b[j].Type):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j].Type < a[i].Type:
			out = append(out, b[j])
			j++
		default:
			out = append(out, TypeBusy{Type: a[i].Type, Busy: a[i].Busy + b[j].Busy})
			i++
			j++
		}
	}
	return out
}

func mergeLaneBusy(a, b []LaneBusy) []LaneBusy {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make([]LaneBusy, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i].Lane.key() < b[j].Lane.key()):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j].Lane.key() < a[i].Lane.key():
			out = append(out, b[j])
			j++
		default:
			out = append(out, LaneBusy{Lane: a[i].Lane, Busy: a[i].Busy + b[j].Busy})
			i++
			j++
		}
	}
	return out
}

// BuildPyramidSidecar opens the trace at tracePath, builds its pyramid,
// and writes the sidecar next to it (atomic temp + rename). It is the
// seal-time and backfill entry point used by utemerge, uteconvert, and
// utecheck -repair-pyramid.
func BuildPyramidSidecar(tracePath string, opts PyramidOptions) (*Pyramid, error) {
	f, err := Open(tracePath, WithPyramid(false))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := BuildPyramid(f, opts)
	if err != nil {
		return nil, err
	}
	if err := WritePyramidFile(PyramidPath(tracePath), p); err != nil {
		return nil, err
	}
	return p, nil
}
