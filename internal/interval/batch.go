package interval

// Columnar frame decode. A Batch holds one frame's records as parallel
// column vectors instead of a []Record: the common fields become flat
// arrays, and the variable-length extras and vector elements are
// flattened into two shared backing columns addressed by prefix-sum
// offsets. Filling a batch straight from the v4 delta-varint stream
// skips per-record materialization entirely — no Record structs, no
// per-record Extra/Vec slice headers — and because every column is a
// plain reusable slice, a pooled batch decodes with zero allocations
// once its columns have grown to frame size. The stats kernel compiler
// (internal/stats) and the SLOG builder consume batches through
// MapFilesBatches.

import (
	"encoding/binary"
	"fmt"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/profile"
)

// Batch is one frame of records in columnar form. Row i's scalar extras
// are Extras[ExtraOff[i]:ExtraOff[i+1]] and its vector elements
// Vecs[VecOff[i]:VecOff[i+1]]; both offset columns hold N+1 entries so
// the slicing needs no per-row length column. All columns are reused
// across decodes — a batch obtained from MapFilesBatches is valid only
// for the duration of the map callback.
type Batch struct {
	N      int
	Start  []clock.Time
	Dura   []clock.Time
	Type   []events.Type
	Bebits []profile.Bebits
	CPU    []uint16
	Node   []uint16
	Thread []uint16

	ExtraOff []uint32
	Extras   []uint64
	VecOff   []uint32
	Vecs     []uint64

	cur frameCursor // v4 dictionary scratch, reused across frames
}

// reset empties the batch, keeping every column's capacity.
func (b *Batch) reset() {
	b.N = 0
	b.Start = b.Start[:0]
	b.Dura = b.Dura[:0]
	b.Type = b.Type[:0]
	b.Bebits = b.Bebits[:0]
	b.CPU = b.CPU[:0]
	b.Node = b.Node[:0]
	b.Thread = b.Thread[:0]
	b.ExtraOff = append(b.ExtraOff[:0], 0)
	b.Extras = b.Extras[:0]
	b.VecOff = append(b.VecOff[:0], 0)
	b.Vecs = b.Vecs[:0]
}

// End returns row i's end time, the file sort key.
func (b *Batch) End(i int) clock.Time { return b.Start[i] + b.Dura[i] }

// ExtraRow returns row i's scalar extras (aliasing the batch).
func (b *Batch) ExtraRow(i int) []uint64 {
	return b.Extras[b.ExtraOff[i]:b.ExtraOff[i+1]]
}

// VecRow returns row i's vector elements (aliasing the batch).
func (b *Batch) VecRow(i int) []uint64 {
	return b.Vecs[b.VecOff[i]:b.VecOff[i+1]]
}

// Row materializes row i as a Record whose Extra and Vec alias the
// batch's backing columns: read-only, and valid only until the batch is
// reset or reused. Use RowCopy for a record that must outlive the batch.
func (b *Batch) Row(i int) Record {
	r := Record{
		Type:   b.Type[i],
		Bebits: b.Bebits[i],
		Start:  b.Start[i],
		Dura:   b.Dura[i],
		CPU:    b.CPU[i],
		Node:   b.Node[i],
		Thread: b.Thread[i],
	}
	if x := b.ExtraRow(i); len(x) > 0 {
		r.Extra = x
	}
	if v := b.VecRow(i); len(v) > 0 {
		r.Vec = v
	}
	return r
}

// RowCopy materializes row i as a self-contained Record with freshly
// allocated Extra and Vec.
func (b *Batch) RowCopy(i int) Record {
	r := b.Row(i)
	if len(r.Extra) > 0 {
		r.Extra = append([]uint64(nil), r.Extra...)
	}
	if len(r.Vec) > 0 {
		r.Vec = append([]uint64(nil), r.Vec...)
	}
	return r
}

// EncodedRowSize returns the length-prefixed fixed-width size row i
// would have on disk, matching Record.EncodedSize without materializing
// the record.
func (b *Batch) EncodedRowSize(i int) int {
	n := profile.CommonSize + 8*int(b.ExtraOff[i+1]-b.ExtraOff[i])
	if events.VectorField(b.Type[i]) != "" {
		n += 2 + 8*int(b.VecOff[i+1]-b.VecOff[i])
	}
	if n <= 255 {
		return 1 + n
	}
	return 3 + n
}

// pushCommon appends one row's fixed-width fields; the caller appends
// the extras/vecs and closes the offset columns.
func (b *Batch) pushCommon(typ events.Type, be profile.Bebits, start, dura clock.Time, cpu, node, thread uint16) {
	b.Start = append(b.Start, start)
	b.Dura = append(b.Dura, dura)
	b.Type = append(b.Type, typ)
	b.Bebits = append(b.Bebits, be)
	b.CPU = append(b.CPU, cpu)
	b.Node = append(b.Node, node)
	b.Thread = append(b.Thread, thread)
	b.N++
}

// closeRow finalizes the variable-length offset columns for the row
// whose common fields pushCommon just appended.
func (b *Batch) closeRow() {
	b.ExtraOff = append(b.ExtraOff, uint32(len(b.Extras)))
	b.VecOff = append(b.VecOff, uint32(len(b.Vecs)))
}

// FromRecords fills the batch from already-decoded records — the path
// taken when a frame-decode hook (the daemon's decoded-frame cache)
// already holds the frame's records, so a warm query never touches the
// encoded bytes.
func (b *Batch) FromRecords(recs []Record) {
	b.reset()
	for i := range recs {
		r := &recs[i]
		b.pushCommon(r.Type, r.Bebits, r.Start, r.Dura, r.CPU, r.Node, r.Thread)
		b.Extras = append(b.Extras, r.Extra...)
		b.Vecs = append(b.Vecs, r.Vec...)
		b.closeRow()
	}
}

// Decode fills the batch from a frame's raw (checksum-verified) payload
// bytes, cross-checking the record count claimed by the directory entry
// exactly as the record decoder does.
func (b *Batch) Decode(version uint32, fe FrameEntry, buf []byte) error {
	b.reset()
	var err error
	if version >= 4 {
		if err = b.cur.init(version, buf); err != nil {
			return err
		}
		err = b.decodeV4()
	} else {
		err = b.decodeFixed(buf)
	}
	if err != nil {
		return err
	}
	if b.N != int(fe.Records) {
		return fmt.Errorf("interval: frame claims %d records, found %d", fe.Records, b.N)
	}
	return nil
}

// decodeFixed parses length-prefixed fixed-width records (header
// versions 1–3) straight into columns.
func (b *Batch) decodeFixed(buf []byte) error {
	for len(buf) > 0 {
		payload, n, err := NextFramed(buf)
		if err != nil {
			return err
		}
		buf = buf[n:]
		if err := b.appendPayload(payload); err != nil {
			return err
		}
	}
	return nil
}

// appendPayload columnar-decodes one fixed-width payload, mirroring
// decodePayload's layout and validation.
func (b *Batch) appendPayload(p []byte) error {
	if len(p) < profile.CommonSize {
		return fmt.Errorf("interval: payload %d bytes, need at least %d", len(p), profile.CommonSize)
	}
	typ := events.Type(binary.LittleEndian.Uint16(p[0:]))
	b.pushCommon(typ,
		profile.Bebits(p[2]),
		clock.Time(binary.LittleEndian.Uint64(p[3:])),
		clock.Time(binary.LittleEndian.Uint64(p[11:])),
		binary.LittleEndian.Uint16(p[19:]),
		binary.LittleEndian.Uint16(p[21:]),
		binary.LittleEndian.Uint16(p[23:]))
	rest := p[profile.CommonSize:]
	if events.VectorField(typ) != "" {
		nx := len(events.ExtraFields(typ))
		if len(rest) < 8*nx+2 {
			return fmt.Errorf("interval: %s record too short for %d extras + vector counter", typ.Name(), nx)
		}
		for i := 0; i < nx; i++ {
			b.Extras = append(b.Extras, binary.LittleEndian.Uint64(rest[8*i:]))
		}
		rest = rest[8*nx:]
		nv := int(binary.LittleEndian.Uint16(rest))
		rest = rest[2:]
		if len(rest) != 8*nv {
			return fmt.Errorf("interval: vector claims %d elements, %d bytes follow", nv, len(rest))
		}
		for i := 0; i < nv; i++ {
			b.Vecs = append(b.Vecs, binary.LittleEndian.Uint64(rest[8*i:]))
		}
		b.closeRow()
		return nil
	}
	if len(rest)%8 != 0 {
		return fmt.Errorf("interval: %d trailing bytes not a whole number of extras", len(rest))
	}
	for i := 0; i < len(rest)/8; i++ {
		b.Extras = append(b.Extras, binary.LittleEndian.Uint64(rest[8*i:]))
	}
	b.closeRow()
	return nil
}

// decodeV4 fills columns from the compact varint stream after cur.init
// has consumed the dictionary and base start. Like frameCursor.next it
// hand-inlines the one-byte varint fast path against a local slice —
// this loop is the whole point of the columnar path, so it pays to keep
// the per-value cost at a bounds check and a compare.
func (b *Batch) decodeV4() error {
	dict := b.cur.dict
	base := b.cur.base
	s := b.cur.buf
	var v uint64
	var n int
	for len(s) > 0 {
		// Dictionary index.
		if s[0] < 0x80 {
			v, s = uint64(s[0]), s[1:]
		} else if v, n = binary.Uvarint(s); n > 0 {
			s = s[n:]
		} else {
			return errVarint
		}
		if v >= uint64(len(dict)) {
			return fmt.Errorf("interval: v4 record dictionary index %d out of range (%d entries)", v, len(dict))
		}
		d := dict[v]
		// Start delta.
		if len(s) != 0 && s[0] < 0x80 {
			v, s = uint64(s[0]), s[1:]
		} else if v, n = binary.Uvarint(s); n > 0 {
			s = s[n:]
		} else {
			return errVarint
		}
		start := base + clock.Time(v)
		// Duration (zigzag).
		if len(s) != 0 && s[0] < 0x80 {
			v, s = uint64(s[0]), s[1:]
		} else if v, n = binary.Uvarint(s); n > 0 {
			s = s[n:]
		} else {
			return errVarint
		}
		b.pushCommon(d.typ, d.bebits, start, clock.Time(int64(v>>1)^-int64(v&1)), d.cpu, d.node, d.thread)
		for i := 0; i < d.nx; i++ {
			if len(s) != 0 && s[0] < 0x80 {
				v, s = uint64(s[0]), s[1:]
			} else if v, n = binary.Uvarint(s); n > 0 {
				s = s[n:]
			} else {
				return errVarint
			}
			b.Extras = append(b.Extras, v)
		}
		if events.VectorField(d.typ) != "" {
			if len(s) != 0 && s[0] < 0x80 {
				v, s = uint64(s[0]), s[1:]
			} else if v, n = binary.Uvarint(s); n > 0 {
				s = s[n:]
			} else {
				return errVarint
			}
			if v > uint64(len(s)) || profile.CommonSize+8*uint64(d.nx)+2+8*v > maxPayload {
				return fmt.Errorf("interval: v4 record claims a %d-element vector", v)
			}
			for nv := int(v); nv > 0; nv-- {
				if len(s) != 0 && s[0] < 0x80 {
					v, s = uint64(s[0]), s[1:]
				} else if v, n = binary.Uvarint(s); n > 0 {
					s = s[n:]
				} else {
					return errVarint
				}
				b.Vecs = append(b.Vecs, v)
			}
		}
		b.closeRow()
	}
	b.cur.buf = s
	return nil
}

// DecodeFrameBatch fills b with fe's records: from the frame-decode
// hook's cached records when one is installed, otherwise by reading and
// columnar-decoding the frame payload directly.
func (f *File) DecodeFrameBatch(fe FrameEntry, b *Batch) error {
	if f.hook != nil {
		recs, err := f.hook(f, fe)
		if err != nil {
			return err
		}
		b.FromRecords(recs)
		return nil
	}
	pb := getBuf()
	buf, err := f.decodeFrameBatchDirect(fe, b, *pb)
	if buf != nil {
		*pb = buf[:0]
	}
	putBuf(pb)
	return err
}

// decodeFrameBatchDirect reads fe (positioned when supported) into buf
// and columnar-decodes it into b, returning the possibly grown buffer
// for reuse.
func (f *File) decodeFrameBatchDirect(fe FrameEntry, b *Batch, buf []byte) ([]byte, error) {
	var err error
	if f.ra != nil {
		buf, err = f.ReadFrameAt(fe, buf)
	} else {
		buf, err = f.readFrameInto(fe, buf)
	}
	if err != nil {
		return buf, err
	}
	return buf, b.Decode(f.Header.HeaderVersion, fe, buf)
}
