package interval

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"tracefw/internal/clock"
)

// ThreadEntry is one thread-table row (paper §2.3.3): "Each thread entry
// contains the MPI task ID, process ID, system thread ID, node ID, the
// logical thread ID, and a thread type."
type ThreadEntry struct {
	Task   int32 // MPI task id, -1 for non-MPI threads
	PID    uint64
	SysTID uint64
	Node   uint16
	LTID   uint16 // node-local logical thread id
	Type   uint8  // events.ThreadMPI / ThreadUser / ThreadSystem
}

// Header is the interval-file header plus the tables stored ahead of all
// interval records.
type Header struct {
	ProfileVersion uint32
	HeaderVersion  uint32
	FieldMask      uint16
	Threads        []ThreadEntry
	Markers        map[uint64]string // globally unique marker id -> string
}

// CurrentHeaderVersion is written into new files. Version 2 extends
// each frame-directory header with aggregate time bounds and a record
// count covering the directory's frames, so window queries can skip a
// whole directory without reading its entries. Version 3 additionally
// stores a magic word and a CRC-32C checksum in every directory header
// and a CRC-32C of each frame's record bytes in its entry, so damaged
// metadata is detected on read and salvage can re-synchronize on the
// directory magic. Version 4 keeps the v3 directory layout (and its
// checksums) but encodes each frame's records compactly: start times
// as varint deltas from the frame's minimum start, durations and
// extras as varints, and the repeating (type, bebits, cpu, node,
// thread) tuples through a per-frame dictionary (see frame_v4.go).
// Files at every older version remain fully readable; v1 aggregates
// are reconstructed from the frame entries when a directory is read.
const CurrentHeaderVersion uint32 = 4

const (
	fileMagic       = "UTEIVL1\x00"
	fixedHeaderSize = 8 + 4 + 4 + 4 + 2 + 2 + 4 + 4
	threadEntrySize = 4 + 8 + 8 + 2 + 2 + 1 + 3
	dirHeaderV1Size = 4 + 4 + 8 + 8
	// Version 2 appends dirStart i64, dirEnd i64, dirRecords u64 after
	// the next link and before the frame entries.
	dirHeaderV2Size = dirHeaderV1Size + 8 + 8 + 8
	// Version 3 stores dirMagic in the formerly reserved word and
	// appends a CRC-32C over the directory metadata after the
	// aggregates (see dirChecksum for exact coverage).
	dirHeaderV3Size = dirHeaderV2Size + 4
	frameEntrySize  = 8 + 4 + 4 + 8 + 8
	// Version 3 appends a CRC-32C of the frame's record bytes to each
	// directory entry.
	frameEntryV3Size = frameEntrySize + 4
	// minFramedRecord bounds how small an encoded record can be on
	// header versions below 4: a one-byte length prefix plus the fixed
	// common payload fields. Used (via minRecordBytes) to validate
	// directory record counts against frame sizes.
	minFramedRecord = 1 + 25 // 1 + profile.CommonSize
)

// dirMagic is stored in the second word of every version-3 directory
// header ("DIR3" little-endian). Salvage scans for it to find directory
// headers after the link chain is damaged.
const dirMagic uint32 = 'D' | 'I'<<8 | 'R'<<16 | '3'<<24

// crcTable is the Castagnoli polynomial used for all v3 checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// dirHeaderSize returns the directory header size for a header version.
func dirHeaderSize(headerVersion uint32) int {
	switch {
	case headerVersion >= 3:
		return dirHeaderV3Size
	case headerVersion == 2:
		return dirHeaderV2Size
	default:
		return dirHeaderV1Size
	}
}

// entrySize returns the directory entry size for a header version.
func entrySize(headerVersion uint32) int {
	if headerVersion >= 3 {
		return frameEntryV3Size
	}
	return frameEntrySize
}

// dirChecksum computes the v3 directory checksum: the entry count, the
// magic word, the three aggregate fields, then the raw entry table. The
// prev/next links are deliberately excluded — the writer patches them
// after the directory is on disk (Close rewrites the last link to 0) —
// and readers validate them structurally instead.
func dirChecksum(count uint32, start, end clock.Time, records uint64, entries []byte) uint32 {
	var cov [32]byte
	binary.LittleEndian.PutUint32(cov[0:], count)
	binary.LittleEndian.PutUint32(cov[4:], dirMagic)
	binary.LittleEndian.PutUint64(cov[8:], uint64(start))
	binary.LittleEndian.PutUint64(cov[16:], uint64(end))
	binary.LittleEndian.PutUint64(cov[24:], records)
	sum := crc32.Update(0, crcTable, cov[:])
	return crc32.Update(sum, crcTable, entries)
}

// WriterOptions tunes frame construction.
type WriterOptions struct {
	// FrameBytes closes a frame once its records reach this size
	// (default 64 KiB). "The frame size is chosen so that the display of
	// a single frame is quick" (paper §4). The threshold is measured on
	// the fixed-width accumulation encoding, so frame boundaries (and
	// with them record-to-frame assignment) are identical across header
	// versions; v4 frames are typically much smaller on disk.
	FrameBytes int
	// FramesPerDir is the number of frame entries per directory
	// (default 32).
	FramesPerDir int
	// Unordered disables the ascending-end-time validation (used by
	// tests and the sort-ablation bench; production writers keep it on).
	Unordered bool
	// FramePrologue, if set, is invoked whenever a new frame is about to
	// receive its first record; the returned records are placed at the
	// beginning of the frame. The merge utility uses this to plant the
	// zero-duration continuation pseudo-intervals that represent the
	// nested outer states at the start of each frame (paper §3.3).
	FramePrologue func() []Record
	// OnSeal, if set, is invoked after every directory flush — the point
	// at which the frames of that directory have reached the underlying
	// writer and the file prefix of SealInfo.Size bytes is durable and
	// self-consistent (see FORMATS.md "always-valid prefix"). Streaming
	// ingest uses it to publish the live tail to readers. The callback
	// runs on the writer's goroutine; it must not call back into the
	// Writer.
	OnSeal func(SealInfo)
}

// SealInfo describes the valid file prefix after a directory seal.
// Opening the file with WithLiveTail(Size) observes exactly Frames
// frames in Dirs directories; bytes beyond Size may not exist yet or
// may be a partially-written next directory.
type SealInfo struct {
	Size   int64      // length of the valid, durable prefix
	Frames int        // total frames sealed so far
	Dirs   int        // total directories written so far
	End    clock.Time // largest record end time sealed so far
	Final  bool       // set on the Close-time notification
}

func (o WriterOptions) frameBytes() int {
	if o.FrameBytes <= 0 {
		return 64 << 10
	}
	return o.FrameBytes
}

func (o WriterOptions) framesPerDir() int {
	if o.FramesPerDir <= 0 {
		return 32
	}
	return o.FramesPerDir
}

// Writer streams interval records into the frame/directory structure of
// Figure 4. Steady-state writing is strictly append-only: every
// directory is written with its next link speculatively pointing at the
// byte immediately after its frames — which is exactly where the next
// directory lands — so mid-stream links are never rewritten and the
// sealed prefix of a partially-written file is always valid. The
// WriteSeeker is needed only at Close, which patches the final
// directory's speculative next link to 0 when no further directory
// follows it.
type Writer struct {
	ws   io.WriteSeeker
	opts WriterOptions

	off          int64 // current file offset
	lastEnd      clock.Time
	anyRecord    bool
	frame        []byte
	frameMeta    frameEntry
	group        []frameEntry // closed frames of the pending directory
	groupBytes   []byte
	prevDirOff   int64  // offset of the previous directory (-1 none)
	patchOff     int64  // where the previous directory's next field lives
	version      uint32 // directory layout version being written
	sealedFrames int    // frames flushed to directories so far
	sealedDirs   int    // directories written so far
	sealedEnd    clock.Time
	enc          v4EncState
	closed       bool
	err          error
	// framePB/groupPB are the pooled backing buffers behind frame and
	// groupBytes, returned to the pool on Close.
	framePB *[]byte
	groupPB *[]byte
}

type frameEntry struct {
	offset  int64 // filled when the group is flushed
	bytes   uint32
	records uint32
	start   clock.Time
	end     clock.Time
	sum     uint32 // CRC-32C of the frame's record bytes (v3 only)
}

// NewWriter writes the header and tables immediately and returns a
// record writer. A zero hdr.HeaderVersion is normalized to
// CurrentHeaderVersion; setting it to 1 explicitly writes the legacy
// directory layout without aggregate bounds (compatibility tests and
// old-format fixtures use this).
func NewWriter(ws io.WriteSeeker, hdr Header, opts WriterOptions) (*Writer, error) {
	if hdr.HeaderVersion == 0 {
		hdr.HeaderVersion = CurrentHeaderVersion
	}
	if hdr.HeaderVersion > CurrentHeaderVersion {
		return nil, fmt.Errorf("interval: cannot write header version %d (current is %d)", hdr.HeaderVersion, CurrentHeaderVersion)
	}
	w := &Writer{ws: ws, opts: opts, prevDirOff: -1, patchOff: -1, version: hdr.HeaderVersion}
	w.frameMeta = emptyFrameMeta()
	w.framePB, w.groupPB = getBuf(), getBuf()
	w.frame, w.groupBytes = *w.framePB, *w.groupPB

	hb := getBuf()
	buf := *hb
	defer func() { *hb = buf[:0]; putBuf(hb) }()
	buf = append(buf, fileMagic...)
	buf = appendU32(buf, hdr.ProfileVersion)
	buf = appendU32(buf, hdr.HeaderVersion)
	buf = appendU32(buf, uint32(len(hdr.Threads)))
	buf = appendU16(buf, hdr.FieldMask)
	buf = appendU16(buf, 0)
	buf = appendU32(buf, uint32(len(hdr.Markers)))
	buf = appendU32(buf, 0)
	for _, te := range hdr.Threads {
		buf = appendU32(buf, uint32(te.Task))
		buf = appendU64(buf, te.PID)
		buf = appendU64(buf, te.SysTID)
		buf = appendU16(buf, te.Node)
		buf = appendU16(buf, te.LTID)
		buf = append(buf, te.Type, 0, 0, 0)
	}
	// Marker table in ascending id order for determinism.
	ids := make([]uint64, 0, len(hdr.Markers))
	for id := range hdr.Markers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s := hdr.Markers[id]
		buf = appendU64(buf, id)
		buf = appendU16(buf, uint16(len(s)))
		buf = append(buf, s...)
	}
	if _, err := ws.Write(buf); err != nil {
		return nil, fmt.Errorf("interval: writing header: %w", err)
	}
	w.off = int64(len(buf))
	return w, nil
}

func emptyFrameMeta() frameEntry {
	return frameEntry{start: clock.Time(1<<63 - 1), end: clock.Time(-1 << 63)}
}

// Add appends one record. Records must arrive in ascending end-time
// order unless the writer was opened Unordered.
func (w *Writer) Add(r *Record) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("interval: Add after Close")
	}
	end := r.End()
	if !w.opts.Unordered && w.anyRecord && end < w.lastEnd {
		w.err = fmt.Errorf("interval: record end %v before previous end %v (file must be end-time ordered)", end, w.lastEnd)
		return w.err
	}
	w.lastEnd = end
	w.anyRecord = true

	w.prologue()
	w.frame = r.Append(w.frame)
	w.frameMeta.records++
	if r.Start < w.frameMeta.start {
		w.frameMeta.start = r.Start
	}
	if end > w.frameMeta.end {
		w.frameMeta.end = end
	}
	if len(w.frame) >= w.opts.frameBytes() {
		if err := w.closeFrame(); err != nil {
			return err
		}
		if len(w.group) >= w.opts.framesPerDir() {
			return w.flushGroup(false)
		}
	}
	return nil
}

// prologue inserts the caller-supplied frame-opening records when the
// current frame is about to receive its first regular record.
func (w *Writer) prologue() {
	if w.opts.FramePrologue == nil || w.frameMeta.records != 0 {
		return
	}
	recs := w.opts.FramePrologue()
	for i := range recs {
		r := &recs[i]
		w.frame = r.Append(w.frame)
		w.frameMeta.records++
		if r.Start < w.frameMeta.start {
			w.frameMeta.start = r.Start
		}
		if e := r.End(); e > w.frameMeta.end {
			w.frameMeta.end = e
		}
	}
}

// AddPayload appends a pre-encoded record payload with the given time
// bounds; used by utilities that copy records without decoding them.
func (w *Writer) AddPayload(payload []byte, start, end clock.Time) error {
	if w.err != nil {
		return w.err
	}
	if !w.opts.Unordered && w.anyRecord && end < w.lastEnd {
		w.err = fmt.Errorf("interval: record end %v before previous end %v", end, w.lastEnd)
		return w.err
	}
	w.lastEnd = end
	w.anyRecord = true
	w.frame = AppendFramed(w.frame, payload)
	w.frameMeta.records++
	if start < w.frameMeta.start {
		w.frameMeta.start = start
	}
	if end > w.frameMeta.end {
		w.frameMeta.end = end
	}
	if len(w.frame) >= w.opts.frameBytes() {
		if err := w.closeFrame(); err != nil {
			return err
		}
		if len(w.group) >= w.opts.framesPerDir() {
			return w.flushGroup(false)
		}
	}
	return nil
}

// closeFrame seals the accumulated frame into the pending directory
// group. Records accumulate fixed-width in w.frame regardless of
// version (Add/AddPayload stay simple and frame boundaries stay
// version-independent); from version 4 on the frame is transcoded into
// the compact varint encoding as it moves into the group buffer, and
// the per-frame CRC covers those encoded bytes.
func (w *Writer) closeFrame() error {
	if w.frameMeta.records == 0 {
		return nil
	}
	mark := len(w.groupBytes)
	if w.version >= 4 {
		gb, err := encodeFrameV4(w.groupBytes, w.frame, &w.enc)
		if err != nil {
			w.err = fmt.Errorf("interval: encoding v4 frame: %w", err)
			return w.err
		}
		w.groupBytes = gb
	} else {
		w.groupBytes = append(w.groupBytes, w.frame...)
	}
	encoded := w.groupBytes[mark:]
	w.frameMeta.bytes = uint32(len(encoded))
	if w.version >= 3 {
		w.frameMeta.sum = crc32.Checksum(encoded, crcTable)
	}
	w.group = append(w.group, w.frameMeta)
	w.frame = w.frame[:0]
	w.frameMeta = emptyFrameMeta()
	return nil
}

// appendDir serializes a directory header and entry table for version,
// computing the v3 checksum when applicable.
func appendDir(buf []byte, version uint32, prev, next int64, group []frameEntry) []byte {
	buf = appendU32(buf, uint32(len(group)))
	if version >= 3 {
		buf = appendU32(buf, dirMagic)
	} else {
		buf = appendU32(buf, 0)
	}
	buf = appendU64(buf, uint64(prev))
	buf = appendU64(buf, uint64(next))
	var dirStart, dirEnd clock.Time
	var dirRecords uint64
	if len(group) > 0 {
		dirStart, dirEnd = group[0].start, group[0].end
		for _, fe := range group {
			if fe.start < dirStart {
				dirStart = fe.start
			}
			if fe.end > dirEnd {
				dirEnd = fe.end
			}
			dirRecords += uint64(fe.records)
		}
	}
	if version >= 2 {
		buf = appendU64(buf, uint64(dirStart))
		buf = appendU64(buf, uint64(dirEnd))
		buf = appendU64(buf, dirRecords)
	}
	crcAt := -1
	if version >= 3 {
		crcAt = len(buf)
		buf = appendU32(buf, 0) // checksum, patched below
	}
	entStart := len(buf)
	for _, fe := range group {
		buf = appendU64(buf, uint64(fe.offset))
		buf = appendU32(buf, fe.bytes)
		buf = appendU32(buf, fe.records)
		buf = appendU64(buf, uint64(fe.start))
		buf = appendU64(buf, uint64(fe.end))
		if version >= 3 {
			buf = appendU32(buf, fe.sum)
		}
	}
	if version >= 3 {
		sum := dirChecksum(uint32(len(group)), dirStart, dirEnd, dirRecords, buf[entStart:])
		binary.LittleEndian.PutUint32(buf[crcAt:], sum)
	}
	return buf
}

// flushGroup writes the pending directory and its frames. last marks the
// final directory (next link 0).
func (w *Writer) flushGroup(last bool) error {
	if len(w.group) == 0 {
		return nil
	}
	dirOff := w.off
	dirSize := int64(dirHeaderSize(w.version) + len(w.group)*entrySize(w.version))

	// Assign frame offsets now that the directory's size is known.
	off := dirOff + dirSize
	for i := range w.group {
		w.group[i].offset = off
		off += int64(w.group[i].bytes)
	}
	next := off
	if last {
		next = 0
	}
	prev := w.prevDirOff
	if prev < 0 {
		prev = 0
	}

	db := getBuf()
	buf := *db
	defer func() { *db = buf[:0]; putBuf(db) }()
	buf = appendDir(buf, w.version, prev, next, w.group)
	buf = append(buf, w.groupBytes...)
	if _, err := w.ws.Write(buf); err != nil {
		w.err = fmt.Errorf("interval: writing frame directory: %w", err)
		return w.err
	}
	w.off = dirOff + int64(len(buf))
	// The previous directory's next link already equals dirOff: it was
	// written speculatively as the offset just past that directory's
	// frames, and flushGroup is the only writer of file bytes. Nothing
	// to rewrite — the steady state is pure append (always-valid
	// prefix; Close patches only the final link).
	w.prevDirOff = dirOff
	w.patchOff = dirOff + 4 + 4 + 8 // next field within the dir header
	w.sealedFrames += len(w.group)
	w.sealedDirs++
	for _, fe := range w.group {
		if fe.end > w.sealedEnd {
			w.sealedEnd = fe.end
		}
	}
	w.group = w.group[:0]
	w.groupBytes = w.groupBytes[:0]
	w.notifySeal(last)
	return nil
}

// notifySeal reports the current valid prefix to the OnSeal callback.
func (w *Writer) notifySeal(final bool) {
	if w.opts.OnSeal == nil {
		return
	}
	w.opts.OnSeal(SealInfo{
		Size:   w.off,
		Frames: w.sealedFrames,
		Dirs:   w.sealedDirs,
		End:    w.sealedEnd,
		Final:  final,
	})
}

// SealedSize returns the length of the valid file prefix: the header
// plus every directory flushed so far. Opening the file with
// WithLiveTail(SealedSize()) observes exactly the sealed frames. Not
// synchronized — call from the writing goroutine or via OnSeal.
func (w *Writer) SealedSize() int64 { return w.off }

// SealedFrames returns how many frames have been flushed into
// directories so far (buffered, unflushed frames are not counted).
func (w *Writer) SealedFrames() int { return w.sealedFrames }

func (w *Writer) patchU64(off int64, v uint64) error {
	if _, err := w.ws.Seek(off, io.SeekStart); err != nil {
		w.err = err
		return err
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	if _, err := w.ws.Write(b[:]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.ws.Seek(w.off, io.SeekStart); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Close flushes the final frame and directory. A file with no records
// gets one empty directory so readers always find a first directory.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	defer w.releaseBufs()
	if w.err != nil {
		return w.err
	}
	if err := w.closeFrame(); err != nil {
		return err
	}
	if len(w.group) > 0 {
		if err := w.flushGroup(true); err != nil {
			return err
		}
	} else {
		// The final directory's speculative next link points just past
		// the end of the file; rewriting it to 0 is the only in-place
		// patch the writer ever performs (live readers treat a next link
		// equal to the sealed size the same way, so a crash before this
		// patch loses nothing).
		if w.patchOff >= 0 {
			if err := w.patchU64(w.patchOff, 0); err != nil {
				return err
			}
			w.notifySeal(true)
		} else {
			// Empty file: one directory with no entries (and, for v2+,
			// zero aggregate bounds) so readers always find a directory.
			buf := appendDir(nil, w.version, 0, 0, nil)
			if _, err := w.ws.Write(buf); err != nil {
				w.err = err
				return w.err
			}
			w.off += int64(len(buf))
			w.sealedDirs++
			w.notifySeal(true)
		}
	}
	return w.err
}

// releaseBufs returns the pooled frame and group buffers once the
// writer is closed; the grown backing arrays go back to the pool for
// the next writer.
func (w *Writer) releaseBufs() {
	if w.framePB != nil {
		*w.framePB = w.frame[:0]
		putBuf(w.framePB)
		w.framePB, w.frame = nil, nil
	}
	if w.groupPB != nil {
		*w.groupPB = w.groupBytes[:0]
		putBuf(w.groupPB)
		w.groupPB, w.groupBytes = nil, nil
	}
}

// CreateFile opens path and returns a Writer on it plus the file handle
// for closing.
func CreateFile(path string, hdr Header, opts WriterOptions) (*Writer, *os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w, err := NewWriter(f, hdr, opts)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return w, f, nil
}

func appendU16(b []byte, v uint16) []byte {
	var t [2]byte
	binary.LittleEndian.PutUint16(t[:], v)
	return append(b, t[:]...)
}

func appendU32(b []byte, v uint32) []byte {
	var t [4]byte
	binary.LittleEndian.PutUint32(t[:], v)
	return append(b, t[:]...)
}

func appendU64(b []byte, v uint64) []byte {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], v)
	return append(b, t[:]...)
}
