// Fuzz targets for the interval reader and the salvage path. They live
// in an external test package so the seed-corpus generator can drive
// the real tracegen→convert pipeline (which itself imports interval).
//
// Plain `go test` executes every checked-in seed under
// testdata/fuzz/<Target>/ as a unit test; `go test -fuzz <Target>`
// mutates from there. Regenerate the corpus with
//
//	go test ./internal/interval -run TestRegenFuzzCorpus -regen-corpus
package interval_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/cluster"
	"tracefw/internal/convert"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/mpisim"
	"tracefw/internal/trace"
	"tracefw/internal/workload"
)

// fuzzInputCap bounds mutated inputs: every structure in the format is
// proportional to file size, so giant inputs only slow exploration.
const fuzzInputCap = 512 << 10

func fuzzOpen(data []byte) (*interval.File, bool) {
	f, err := interval.ReadHeader(interval.NewSeekBufferFrom(data))
	return f, err == nil
}

// FuzzOpen: header and table parsing plus the directory walk must never
// panic, hang, or allocate unboundedly, no matter the input.
func FuzzOpen(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("UTEIVL1\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzInputCap {
			return
		}
		fl, ok := fuzzOpen(data)
		if !ok {
			return
		}
		_, _ = fl.Frames()
		_, _ = fl.Dirs()
		_, _, _, _ = fl.Stats()
		_, _ = fl.Validate(nil)
	})
}

// FuzzNextRecord: the sequential scanner must terminate with either EOF
// or an error on every input, in a bounded number of steps.
func FuzzNextRecord(f *testing.F) {
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzInputCap {
			return
		}
		fl, ok := fuzzOpen(data)
		if !ok {
			return
		}
		sc := fl.Scan()
		var rec interval.Record
		// Every record costs at least one framed byte, so a terminating
		// scanner returns at most Size records.
		for steps := fl.Size + 16; ; steps-- {
			if steps < 0 {
				t.Fatalf("scanner did not terminate within %d records", fl.Size+16)
			}
			if err := sc.NextRecordInto(&rec); err != nil {
				break
			}
		}
	})
}

// FuzzScanWindow: windowed access must behave like the sequential
// scanner — bounded, panic-free — for arbitrary windows too.
func FuzzScanWindow(f *testing.F) {
	f.Add([]byte{}, int64(0), int64(0))
	f.Fuzz(func(t *testing.T, data []byte, lo, hi int64) {
		if len(data) > fuzzInputCap {
			return
		}
		fl, ok := fuzzOpen(data)
		if !ok {
			return
		}
		_, _ = fl.FramesInWindow(clock.Time(lo), clock.Time(hi))
		_, _, _ = fl.FrameContaining(clock.Time(lo))
		sc := fl.ScanWindow(clock.Time(lo), clock.Time(hi))
		var rec interval.Record
		for steps := fl.Size + 16; ; steps-- {
			if steps < 0 {
				t.Fatalf("window scanner did not terminate within %d records", fl.Size+16)
			}
			if err := sc.NextRecordInto(&rec); err != nil {
				break
			}
		}
	})
}

// FuzzSalvage: Salvage must never panic or return an error for any
// input that opens, every frame it reports recovered must actually be
// readable with the promised record count, and Repair must turn any
// salvage result into a file that passes Validate.
func FuzzSalvage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("UTEIVL1\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzInputCap {
			return
		}
		fl, ok := fuzzOpen(data)
		if !ok {
			return
		}
		sv := fl.Salvage()
		for _, fe := range sv.Frames {
			recs, err := fl.FrameRecords(fe)
			if err != nil {
				t.Fatalf("salvaged frame at %d unreadable: %v", fe.Offset, err)
			}
			if len(recs) != int(fe.Records) {
				t.Fatalf("salvaged frame at %d: %d records, entry claims %d", fe.Offset, len(recs), fe.Records)
			}
		}
		out := interval.NewSeekBuffer()
		if _, err := interval.Repair(fl, sv, out, interval.WriterOptions{}); err != nil {
			t.Fatalf("repair of salvage result failed: %v", err)
		}
		rf, err := interval.ReadHeader(interval.NewSeekBufferFrom(out.Bytes()))
		if err != nil {
			t.Fatalf("repaired file does not open: %v", err)
		}
		if rep, err := rf.Validate(nil); err != nil {
			t.Fatalf("repaired file fails validation: %v (%+v)", err, rep)
		}
	})
}

// FuzzPyramid: the summary-pyramid sidecar decoder must never panic,
// hang, or allocate unboundedly on arbitrary bytes, and it must never
// invent structure: whatever it accepts must survive a canonical
// re-encode/decode round trip unchanged and satisfy the level-geometry
// invariants the query planner relies on (power-of-two doubling widths,
// per-cell summaries in canonical order).
func FuzzPyramid(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("UTEPYR1\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzInputCap {
			return
		}
		p, err := interval.DecodePyramid(data)
		if err != nil {
			return
		}
		if p.BaseWidth <= 0 || p.BaseWidth&(p.BaseWidth-1) != 0 {
			t.Fatalf("decoder accepted base width %d", p.BaseWidth)
		}
		for i, lvl := range p.Levels {
			if want := p.BaseWidth << uint(i); lvl.Width != want {
				t.Fatalf("level %d width %d, want %d", i, lvl.Width, want)
			}
		}
		rt, err := interval.DecodePyramid(p.Encode())
		if err != nil {
			t.Fatalf("re-encoded pyramid does not decode: %v", err)
		}
		if !reflect.DeepEqual(rt, p) {
			t.Fatalf("pyramid round trip changed the value\n got %+v\nwant %+v", rt, p)
		}
	})
}

// --- seed corpus -----------------------------------------------------

var regenCorpus = flag.Bool("regen-corpus", false, "regenerate the checked-in fuzz seed corpus from tracegen output")

// corpusSeeds builds the canonical seed files: a real pipeline output
// for every header version, an empty file, and a single-frame file.
func corpusSeeds(t *testing.T) map[string][]byte {
	t.Helper()
	dir := t.TempDir()
	cfg := mpisim.Config{
		Cluster: cluster.Config{
			Nodes:       2,
			CPUsPerNode: 1,
			Seed:        17,
			TraceOpts: trace.Options{
				Prefix:  filepath.Join(dir, "raw"),
				Enabled: events.MaskAll,
			},
		},
		TasksPerNode: 1,
	}
	w, err := mpisim.NewFiles(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Start(workload.Ring{Iters: 2, Bytes: 64}.Main())
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	rawPaths := []string{cfg.Cluster.TraceOpts.FileName(0), cfg.Cluster.TraceOpts.FileName(1)}
	outPaths := []string{filepath.Join(dir, "a.ute"), filepath.Join(dir, "b.ute")}
	if _, err := convert.ConvertAll(rawPaths, outPaths, convert.Options{}); err != nil {
		t.Fatal(err)
	}
	current, err := os.ReadFile(outPaths[0])
	if err != nil {
		t.Fatal(err)
	}

	f, err := interval.Open(outPaths[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := f.Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("pipeline produced no records")
	}
	// Re-encode the same records under the older header versions, with
	// small frames so the seeds still exercise multi-directory walks.
	reencode := func(version uint32, recs []interval.Record, opts interval.WriterOptions) []byte {
		hdr := f.Header
		hdr.HeaderVersion = version
		sb := interval.NewSeekBuffer()
		w, err := interval.NewWriter(sb, hdr, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range recs {
			if err := w.Add(&recs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return sb.Bytes()
	}
	small := interval.WriterOptions{FrameBytes: 512, FramesPerDir: 4}
	n := len(recs)
	if n > 64 {
		n = 64
	}
	return map[string][]byte{
		fmt.Sprintf("v%d-pipeline", interval.CurrentHeaderVersion): current,
		"v1-small":     reencode(1, recs[:n], small),
		"v2-small":     reencode(2, recs[:n], small),
		"v3-small":     reencode(3, recs[:n], small),
		"empty":        reencode(interval.CurrentHeaderVersion, nil, interval.WriterOptions{}),
		"single-frame": reencode(interval.CurrentHeaderVersion, recs[:4], interval.WriterOptions{}),
	}
}

// writeCorpusEntry writes one seed in the `go test fuzz v1` encoding.
func writeCorpusEntry(t *testing.T, target, name string, values ...string) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	body := "go test fuzz v1\n"
	for _, v := range values {
		body += v + "\n"
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRegenFuzzCorpus(t *testing.T) {
	if !*regenCorpus {
		t.Skip("pass -regen-corpus to regenerate the seed corpus")
	}
	seeds := corpusSeeds(t)
	for name, data := range seeds {
		q := "[]byte(" + strconv.Quote(string(data)) + ")"
		for _, target := range []string{"FuzzOpen", "FuzzNextRecord", "FuzzSalvage"} {
			writeCorpusEntry(t, target, name, q)
		}
		// Window seeds: the full run plus a half-open slice of it.
		fl, ok := fuzzOpen(data)
		if !ok {
			t.Fatalf("seed %s does not open", name)
		}
		first, last, _, err := fl.Stats()
		if err != nil {
			t.Fatal(err)
		}
		mid := first + (last-first)/2
		writeCorpusEntry(t, "FuzzScanWindow", name+"-all", q,
			fmt.Sprintf("int64(%d)", first), fmt.Sprintf("int64(%d)", last))
		writeCorpusEntry(t, "FuzzScanWindow", name+"-half", q,
			fmt.Sprintf("int64(%d)", mid), fmt.Sprintf("int64(%d)", last))
		// Pyramid seeds: the real sidecar of every trace seed, so the
		// fuzzer mutates from encodings the builder actually produces.
		p, err := interval.BuildPyramid(fl, interval.PyramidOptions{BaseCells: 64, TopK: 4})
		if err != nil {
			t.Fatal(err)
		}
		writeCorpusEntry(t, "FuzzPyramid", name,
			"[]byte("+strconv.Quote(string(p.Encode()))+")")
	}
}

// TestFuzzCorpusSeedsValid guards the checked-in corpus against rot:
// the undamaged seeds must still open as valid interval files and cover
// every header version the reader accepts.
func TestFuzzCorpusSeedsValid(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzOpen")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("seed corpus missing (run -regen-corpus): %v", err)
	}
	versions := map[uint32]bool{}
	for _, e := range entries {
		body, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		data := decodeCorpusBytes(t, e.Name(), string(body))
		fl, ok := fuzzOpen(data)
		if !ok {
			t.Fatalf("seed %s no longer opens", e.Name())
		}
		if _, err := fl.Validate(nil); err != nil {
			t.Fatalf("seed %s no longer validates: %v", e.Name(), err)
		}
		if !fl.Salvage().Report.Clean() {
			t.Fatalf("seed %s: salvage of a pristine seed is not clean", e.Name())
		}
		versions[fl.Header.HeaderVersion] = true
	}
	for v := uint32(1); v <= interval.CurrentHeaderVersion; v++ {
		if !versions[v] {
			t.Fatalf("no seed with header version %d (have %v)", v, versions)
		}
	}
}

// decodeCorpusBytes extracts the single []byte literal from a `go test
// fuzz v1` corpus file.
func decodeCorpusBytes(t *testing.T, name, body string) []byte {
	t.Helper()
	const header = "go test fuzz v1\n"
	if len(body) < len(header) || body[:len(header)] != header {
		t.Fatalf("%s: not a corpus file", name)
	}
	line := body[len(header):]
	if i := len(line) - 1; i >= 0 && line[i] == '\n' {
		line = line[:i]
	}
	const pre, post = "[]byte(", ")"
	if len(line) < len(pre)+len(post) || line[:len(pre)] != pre || line[len(line)-len(post):] != post {
		t.Fatalf("%s: unexpected corpus entry %q...", name, line[:min(len(line), 40)])
	}
	s, err := strconv.Unquote(line[len(pre) : len(line)-len(post)])
	if err != nil {
		t.Fatalf("%s: bad quoted literal: %v", name, err)
	}
	return []byte(s)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
