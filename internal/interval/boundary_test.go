package interval

import (
	"context"
	"errors"
	"testing"

	"tracefw/internal/clock"
)

// TestWindowOpsAtFrameBoundaries probes FrameContaining, SeekTime, and
// FramesInWindow at exact frame start and end timestamps — the
// off-by-one surface of every window operation — across all four header
// versions, against oracles computed from the full frame and record
// lists.
func TestWindowOpsAtFrameBoundaries(t *testing.T) {
	for version := uint32(1); version <= CurrentHeaderVersion; version++ {
		t.Run(versionName(version), func(t *testing.T) {
			sb, _ := writeRandomFile(t, 0xb0+uint64(version), 700, version)
			f := openFile(t, sb)
			frames, err := f.Frames()
			if err != nil {
				t.Fatal(err)
			}
			if len(frames) < 8 {
				t.Fatalf("want several frames, got %d", len(frames))
			}

			var probes []clock.Time
			for _, fe := range frames {
				probes = append(probes, fe.Start, fe.End)
				if fe.Start > 0 {
					probes = append(probes, fe.Start-1)
				}
				probes = append(probes, fe.End+1)
			}

			for _, p := range probes {
				checkFrameContaining(t, f, frames, p)
				checkSeekTime(t, f, frames, p)
				checkFramesInWindow(t, f, frames, p, p)
			}
			// Windows spanning exactly one frame's bounds, and the
			// degenerate inverted window.
			for _, fe := range frames {
				checkFramesInWindow(t, f, frames, fe.Start, fe.End)
			}
			if got, err := f.FramesInWindow(frames[0].End+1, frames[0].End); err != nil || len(got) != 0 {
				// Inverted windows legitimately match nothing.
				for _, fe := range got {
					if !(fe.End >= frames[0].End+1 && fe.Start <= frames[0].End) {
						t.Fatalf("inverted window returned non-overlapping frame %+v", fe)
					}
				}
			}
		})
	}
}

func versionName(v uint32) string {
	return "v" + string(rune('0'+v))
}

// checkFrameContaining: the contract is "first frame with End >= t",
// derived from the frames' end-time ordering.
func checkFrameContaining(t *testing.T, f *File, frames []FrameEntry, p clock.Time) {
	t.Helper()
	fe, ok, err := f.FrameContaining(p)
	if err != nil {
		t.Fatalf("FrameContaining(%v): %v", p, err)
	}
	var want *FrameEntry
	for i := range frames {
		if frames[i].End >= p {
			want = &frames[i]
			break
		}
	}
	if (want != nil) != ok {
		t.Fatalf("FrameContaining(%v): ok=%v, oracle %v", p, ok, want != nil)
	}
	if ok && (fe.Offset != want.Offset || fe.Start != want.Start || fe.End != want.End) {
		t.Fatalf("FrameContaining(%v) = %+v, oracle %+v", p, fe, *want)
	}
}

// checkSeekTime: SeekTime is frame-granular — after SeekTime(p) the
// scanner yields every record from the first frame whose End >= p to
// the end of the file.
func checkSeekTime(t *testing.T, f *File, frames []FrameEntry, p clock.Time) {
	t.Helper()
	s := f.Scan()
	if err := s.SeekTime(p); err != nil {
		t.Fatalf("SeekTime(%v): %v", p, err)
	}
	got, err := s.All()
	if err != nil {
		t.Fatalf("All after SeekTime(%v): %v", p, err)
	}
	var want int
	for _, fe := range frames {
		if fe.End >= p {
			want += int(fe.Records)
		}
	}
	if len(got) != want {
		t.Fatalf("SeekTime(%v) yields %d records, oracle %d", p, len(got), want)
	}
}

// checkFramesInWindow: exact agreement with the overlap filter over the
// full frame list, including order.
func checkFramesInWindow(t *testing.T, f *File, frames []FrameEntry, lo, hi clock.Time) {
	t.Helper()
	got, err := f.FramesInWindow(lo, hi)
	if err != nil {
		t.Fatalf("FramesInWindow(%v, %v): %v", lo, hi, err)
	}
	var want []FrameEntry
	for _, fe := range frames {
		if fe.End >= lo && fe.Start <= hi {
			want = append(want, fe)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("FramesInWindow(%v, %v) returns %d frames, oracle %d", lo, hi, len(got), len(want))
	}
	for i := range got {
		if got[i].Offset != want[i].Offset {
			t.Fatalf("FramesInWindow(%v, %v)[%d] offset %d, oracle %d",
				lo, hi, i, got[i].Offset, want[i].Offset)
		}
	}
}

// TestMapFramesContextCancelled: a cancelled context aborts the
// map-reduce engine with the context's error.
func TestMapFramesContextCancelled(t *testing.T) {
	sb, _ := writeRandomFile(t, 21, 500, CurrentHeaderVersion)
	f := openFile(t, sb)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := MapFrames(f, MapOptions{Context: ctx},
		func(_ FrameEntry, recs []Record) ([]Record, error) { return recs, nil },
		func(_ FrameEntry, _ []Record) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("MapFrames under cancelled context: %v, want context.Canceled", err)
	}
}

// TestMapFramesContextMidFlight cancels while frames are in flight; the
// engine must stop with the context error, not hang or succeed.
func TestMapFramesContextMidFlight(t *testing.T) {
	sb, _ := writeRandomFile(t, 22, 3000, CurrentHeaderVersion)
	f := openFile(t, sb)
	ctx, cancel := context.WithCancel(context.Background())
	frames := 0
	err := MapFrames(f, MapOptions{Context: ctx, Parallel: 2},
		func(_ FrameEntry, recs []Record) ([]Record, error) { return recs, nil },
		func(_ FrameEntry, _ []Record) error {
			frames++
			if frames == 2 {
				cancel()
			}
			return nil
		})
	cancel()
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight cancel: %v, want context.Canceled or nil", err)
	}
}

// TestScanWindowCtxCancelled: a scanner with a cancelled context stops
// at the next frame boundary with the context's error.
func TestScanWindowCtxCancelled(t *testing.T) {
	sb, recs := writeRandomFile(t, 23, 500, CurrentHeaderVersion)
	f := openFile(t, sb)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := f.ScanWindowCtx(ctx, 0, recs[len(recs)-1].End())
	if _, err := s.NextRecord(); !errors.Is(err, context.Canceled) {
		t.Fatalf("NextRecord under cancelled context: %v, want context.Canceled", err)
	}

	// SetContext on a plain scanner behaves identically.
	s2 := f.Scan()
	s2.SetContext(ctx)
	if _, err := s2.NextRecord(); !errors.Is(err, context.Canceled) {
		t.Fatalf("NextRecord after SetContext(cancelled): %v, want context.Canceled", err)
	}

	// And an un-cancelled context changes nothing about the results.
	s3 := f.ScanWindowCtx(context.Background(), 0, recs[len(recs)-1].End())
	all, err := s3.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(recs) {
		t.Fatalf("ScanWindowCtx(Background) yields %d records, want %d", len(all), len(recs))
	}
}
