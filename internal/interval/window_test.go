package interval

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/profile"
	"tracefw/internal/xrand"
)

// writeRandomFile writes n records with pseudo-random start times and
// durations (sorted by end time, as the format requires) under the
// given header version, returning the file and the records in written
// order. Small frame/dir limits force several directories.
func writeRandomFile(t *testing.T, seed uint64, n int, hdrVersion uint32) (*SeekBuffer, []Record) {
	t.Helper()
	rng := xrand.New(seed)
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Type:   events.EvMPISend,
			Bebits: profile.Complete,
			Start:  clock.Time(rng.Int63n(int64(100 * clock.Millisecond))),
			Dura:   clock.Time(rng.Int63n(int64(5 * clock.Millisecond))),
			CPU:    uint16(rng.Intn(4)),
			Node:   uint16(rng.Intn(2)),
			Thread: uint16(rng.Intn(8)),
			Extra:  []uint64{rng.Uint64() % 1000, 7, uint64(i), 0, 0, 0},
		}
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].End() < recs[j].End() })
	hdr := testHeader()
	hdr.HeaderVersion = hdrVersion
	sb := NewSeekBuffer()
	w, err := NewWriter(sb, hdr, WriterOptions{FrameBytes: 512, FramesPerDir: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Add(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return sb, recs
}

func openFile(t *testing.T, sb *SeekBuffer) *File {
	t.Helper()
	f, err := ReadHeader(NewSeekBufferFrom(sb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDirAggregatesMatchEntries(t *testing.T) {
	sb, _ := writeRandomFile(t, 1, 800, CurrentHeaderVersion)
	f := openFile(t, sb)
	dirs, err := f.Dirs()
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 3 {
		t.Fatalf("want several directories, got %d", len(dirs))
	}
	for di, d := range dirs {
		var lo, hi clock.Time
		var n int64
		for i, fe := range d.Entries {
			if i == 0 || fe.Start < lo {
				lo = fe.Start
			}
			if i == 0 || fe.End > hi {
				hi = fe.End
			}
			n += int64(fe.Records)
		}
		if d.Start != lo || d.End != hi || d.Records != n {
			t.Fatalf("dir %d: aggregates [%v %v] %d, entries say [%v %v] %d",
				di, d.Start, d.End, d.Records, lo, hi, n)
		}
	}
}

// TestV1FileCompat writes the same records under header version 1 (the
// pre-aggregate directory layout) and checks that reading — scans,
// window queries, reconstructed directory aggregates, stats — agrees
// with the version-2 file.
func TestV1FileCompat(t *testing.T) {
	sb1, recs := writeRandomFile(t, 2, 600, 1)
	sb2, _ := writeRandomFile(t, 2, 600, CurrentHeaderVersion)

	f1, f2 := openFile(t, sb1), openFile(t, sb2)
	if f1.Header.HeaderVersion != 1 || f2.Header.HeaderVersion != CurrentHeaderVersion {
		t.Fatalf("header versions %d, %d", f1.Header.HeaderVersion, f2.Header.HeaderVersion)
	}

	all1, err := f1.Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	all2, err := f2.Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all1, all2) {
		t.Fatal("v1 and v2 scans disagree")
	}
	if len(all1) != len(recs) {
		t.Fatalf("scan yields %d records, wrote %d", len(all1), len(recs))
	}

	d1, err := f1.Dirs()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := f2.Dirs()
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != len(d2) {
		t.Fatalf("dir counts %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i].Start != d2[i].Start || d1[i].End != d2[i].End || d1[i].Records != d2[i].Records {
			t.Fatalf("dir %d: v1 reconstructed [%v %v] %d, v2 stored [%v %v] %d",
				i, d1[i].Start, d1[i].End, d1[i].Records, d2[i].Start, d2[i].End, d2[i].Records)
		}
	}

	s1a, s1b, n1, err := f1.Stats()
	if err != nil {
		t.Fatal(err)
	}
	s2a, s2b, n2, err := f2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s1a != s2a || s1b != s2b || n1 != n2 {
		t.Fatalf("stats disagree: v1 [%v %v] %d, v2 [%v %v] %d", s1a, s1b, n1, s2a, s2b, n2)
	}
}

// windowCases derives a spread of windows (empty, partial, full,
// degenerate) from the record span.
func windowCases(recs []Record) [][2]clock.Time {
	span := recs[len(recs)-1].End()
	return [][2]clock.Time{
		{0, span},                    // everything
		{span / 4, span / 2},         // middle
		{0, span / 10},               // early slice
		{span - span/10, span},       // late slice
		{span / 3, span / 3},         // single instant
		{span + 1, span * 2},         // past the end
		{-1000, -1},                  // before the start
		{span / 2, span/2 + 100_000}, // narrow
		{span / 5, 4 * span / 5},     // wide interior
	}
}

// TestFramesInWindowOracle checks FramesInWindow against brute-force
// filtering of the full frame list, on both header versions.
func TestFramesInWindowOracle(t *testing.T) {
	for _, version := range []uint32{1, CurrentHeaderVersion} {
		for seed := uint64(10); seed < 14; seed++ {
			sb, recs := writeRandomFile(t, seed, 500, version)
			f := openFile(t, sb)
			frames, err := f.Frames()
			if err != nil {
				t.Fatal(err)
			}
			for _, wc := range windowCases(recs) {
				lo, hi := wc[0], wc[1]
				got, err := f.FramesInWindow(lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				var want []FrameEntry
				for _, fe := range frames {
					if fe.End >= lo && fe.Start <= hi {
						want = append(want, fe)
					}
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("v%d seed %d window [%v %v]: got %d frames, want %d",
						version, seed, lo, hi, len(got), len(want))
				}
			}
		}
	}
}

// TestWindowProperty drives FramesInWindow and ScanWindow with
// quick-generated windows: for any [lo, hi], the frames returned are
// exactly the overlap-filtered frame list and the scanned records are
// exactly those frames' records.
func TestWindowProperty(t *testing.T) {
	sb, recs := writeRandomFile(t, 20, 500, CurrentHeaderVersion)
	f := openFile(t, sb)
	frames, err := f.Frames()
	if err != nil {
		t.Fatal(err)
	}
	span := int64(recs[len(recs)-1].End())
	prop := func(a, b uint64) bool {
		lo := clock.Time(int64(a%uint64(2*span)) - span/2)
		hi := clock.Time(int64(b%uint64(2*span)) - span/2)
		if hi < lo {
			lo, hi = hi, lo
		}
		got, err := f.FramesInWindow(lo, hi)
		if err != nil {
			return false
		}
		var want []FrameEntry
		for _, fe := range frames {
			if fe.End >= lo && fe.Start <= hi {
				want = append(want, fe)
			}
		}
		if !reflect.DeepEqual(got, want) {
			return false
		}
		scanned, err := f.ScanWindow(lo, hi).All()
		if err != nil {
			return false
		}
		var n int
		for _, fe := range want {
			n += int(fe.Records)
		}
		return len(scanned) == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestScanWindowDecodesOnlyOverlapping is the decode-count guarantee:
// a windowed scan reads exactly the frames overlapping the window and
// yields exactly their records.
func TestScanWindowDecodesOnlyOverlapping(t *testing.T) {
	for _, version := range []uint32{1, CurrentHeaderVersion} {
		sb, recs := writeRandomFile(t, 3, 700, version)
		oracleF := openFile(t, sb)
		for _, wc := range windowCases(recs) {
			lo, hi := wc[0], wc[1]
			overlapping, err := oracleF.FramesInWindow(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			var want []Record
			for _, fe := range overlapping {
				rs, err := oracleF.FrameRecords(fe)
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, rs...)
			}

			f := openFile(t, sb) // fresh file: clean decode counter
			got, err := f.ScanWindow(lo, hi).All()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) == 0 {
				got = nil
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("v%d window [%v %v]: scan yields %d records, oracle %d",
					version, lo, hi, len(got), len(want))
			}
			if f.DecodedFrames() != int64(len(overlapping)) {
				t.Fatalf("v%d window [%v %v]: decoded %d frames, only %d overlap",
					version, lo, hi, f.DecodedFrames(), len(overlapping))
			}
		}
	}
}

// TestSeekTimeOracle checks SeekTime against the frame list: scanning
// after SeekTime(t) must produce every record from the first frame
// whose end time reaches t, and decode nothing before it.
func TestSeekTimeOracle(t *testing.T) {
	for _, version := range []uint32{1, CurrentHeaderVersion} {
		sb, recs := writeRandomFile(t, 4, 600, version)
		oracleF := openFile(t, sb)
		frames, err := oracleF.Frames()
		if err != nil {
			t.Fatal(err)
		}
		span := recs[len(recs)-1].End()
		targets := []clock.Time{0, -5, span / 4, span / 2, 3 * span / 4, span, span + 1}
		for _, fe := range frames[:3] {
			targets = append(targets, fe.End, fe.End+1)
		}
		for _, target := range targets {
			first := len(frames)
			for i, fe := range frames {
				if fe.End >= target {
					first = i
					break
				}
			}
			var want []Record
			for _, fe := range frames[first:] {
				rs, err := oracleF.FrameRecords(fe)
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, rs...)
			}

			f := openFile(t, sb)
			sc := f.Scan()
			if err := sc.SeekTime(target); err != nil {
				t.Fatal(err)
			}
			got, err := sc.All()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) == 0 {
				got = nil
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("v%d SeekTime(%v): got %d records, want %d (first frame %d of %d)",
					version, target, len(got), len(want), first, len(frames))
			}
			if f.DecodedFrames() != int64(len(frames)-first) {
				t.Fatalf("v%d SeekTime(%v): decoded %d frames, want %d",
					version, target, f.DecodedFrames(), len(frames)-first)
			}
		}
	}
}

// TestSeekTimeRestartsAfterEOF checks that SeekTime clears a sticky
// io.EOF so a scanner can be reused for several point queries.
func TestSeekTimeRestartsAfterEOF(t *testing.T) {
	sb, recs := writeRandomFile(t, 5, 100, CurrentHeaderVersion)
	f := openFile(t, sb)
	sc := f.Scan()
	if _, err := sc.All(); err != nil {
		t.Fatal(err)
	}
	if err := sc.SeekTime(0); err != nil {
		t.Fatal(err)
	}
	again, err := sc.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(recs) {
		t.Fatalf("rescan after EOF: %d records, want %d", len(again), len(recs))
	}
}

// TestMapFramesMatchesScan runs the map-reduce engine at several worker
// counts and checks that the reduce stage observes exactly the
// sequential frame order with exactly the sequential records.
func TestMapFramesMatchesScan(t *testing.T) {
	sb, _ := writeRandomFile(t, 6, 600, CurrentHeaderVersion)
	ref := openFile(t, sb)
	frames, err := ref.Frames()
	if err != nil {
		t.Fatal(err)
	}
	wantRecs, err := ref.Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 7} {
		f := openFile(t, sb)
		var gotOrder []int64
		var gotRecs []Record
		err := MapFrames(f, MapOptions{Parallel: workers},
			func(fe FrameEntry, recs []Record) ([]Record, error) {
				out := make([]Record, len(recs))
				copy(out, recs)
				return out, nil
			},
			func(fe FrameEntry, recs []Record) error {
				gotOrder = append(gotOrder, fe.Offset)
				gotRecs = append(gotRecs, recs...)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if len(gotOrder) != len(frames) {
			t.Fatalf("j=%d: reduce saw %d frames, want %d", workers, len(gotOrder), len(frames))
		}
		for i, fe := range frames {
			if gotOrder[i] != fe.Offset {
				t.Fatalf("j=%d: frame %d reduced out of order", workers, i)
			}
		}
		if !reflect.DeepEqual(gotRecs, wantRecs) {
			t.Fatalf("j=%d: reduced records differ from sequential scan", workers)
		}
	}
}

// TestMapFramesWindowDecodeCount: the engine's window option must skip
// non-overlapping frames without decoding them.
func TestMapFramesWindowDecodeCount(t *testing.T) {
	sb, recs := writeRandomFile(t, 7, 600, CurrentHeaderVersion)
	ref := openFile(t, sb)
	span := recs[len(recs)-1].End()
	lo, hi := span/4, span/2
	overlapping, err := ref.FramesInWindow(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	allFrames, err := ref.Frames()
	if err != nil {
		t.Fatal(err)
	}
	if len(overlapping) == 0 || len(overlapping) == len(allFrames) {
		t.Fatalf("degenerate window: %d of %d frames overlap", len(overlapping), len(allFrames))
	}

	f := openFile(t, sb)
	var seen int
	err = MapFrames(f, MapOptions{Parallel: 4, Window: true, Lo: lo, Hi: hi},
		func(fe FrameEntry, recs []Record) (int, error) { return len(recs), nil },
		func(fe FrameEntry, n int) error { seen += n; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if f.DecodedFrames() != int64(len(overlapping)) {
		t.Fatalf("engine decoded %d frames, only %d overlap", f.DecodedFrames(), len(overlapping))
	}
	var want int
	for _, fe := range overlapping {
		want += int(fe.Records)
	}
	if seen != want {
		t.Fatalf("engine mapped %d records, overlapping frames hold %d", seen, want)
	}
}

// TestMapFramesErrors: map and reduce errors must surface (and not
// deadlock the ordered reducer).
func TestMapFramesErrors(t *testing.T) {
	sb, _ := writeRandomFile(t, 8, 400, CurrentHeaderVersion)
	for _, workers := range []int{1, 4} {
		f := openFile(t, sb)
		i := 0
		err := MapFrames(f, MapOptions{Parallel: workers},
			func(fe FrameEntry, recs []Record) (struct{}, error) {
				return struct{}{}, fmt.Errorf("map boom at %d", fe.Offset)
			},
			func(fe FrameEntry, _ struct{}) error { return nil })
		if err == nil || !strings.Contains(err.Error(), "map boom") {
			t.Fatalf("j=%d: map error lost: %v", workers, err)
		}

		f = openFile(t, sb)
		err = MapFrames(f, MapOptions{Parallel: workers},
			func(fe FrameEntry, recs []Record) (struct{}, error) { return struct{}{}, nil },
			func(fe FrameEntry, _ struct{}) error {
				i++
				if i == 2 {
					return fmt.Errorf("reduce boom")
				}
				return nil
			})
		if err == nil || !strings.Contains(err.Error(), "reduce boom") {
			t.Fatalf("j=%d: reduce error lost: %v", workers, err)
		}
	}
}

// corrupt returns a copy of the file bytes with an in-place edit.
func corrupt(b []byte, edit func([]byte)) *SeekBuffer {
	c := append([]byte(nil), b...)
	edit(c)
	return NewSeekBufferFrom(c)
}

// TestCorruptDirectoryRejected checks that impossible frame directory
// metadata is rejected at read time with a clear error rather than
// causing huge allocations or out-of-range reads.
func TestCorruptDirectoryRejected(t *testing.T) {
	sb, _ := writeRandomFile(t, 9, 300, CurrentHeaderVersion)
	base := sb.Bytes()
	f := openFile(t, sb)
	dirOff := f.FirstDir
	entryOff := dirOff + int64(dirHeaderSize(CurrentHeaderVersion))

	cases := []struct {
		name string
		edit func([]byte)
	}{
		{"frame offset past file end", func(b []byte) {
			binary.LittleEndian.PutUint64(b[entryOff:], uint64(len(b))+100)
		}},
		{"frame size past file end", func(b []byte) {
			binary.LittleEndian.PutUint32(b[entryOff+8:], uint32(len(b))+100)
		}},
		{"record count impossible for size", func(b []byte) {
			binary.LittleEndian.PutUint32(b[entryOff+12:], 1<<30)
		}},
		{"entry count past file end", func(b []byte) {
			binary.LittleEndian.PutUint32(b[dirOff:], 1<<28)
		}},
		{"next link past file end", func(b []byte) {
			binary.LittleEndian.PutUint64(b[dirOff+16:], uint64(len(b))+1)
		}},
	}
	for _, tc := range cases {
		cf, err := ReadHeader(corrupt(base, tc.edit))
		if err != nil {
			continue // rejected at header time is fine too
		}
		if _, err := cf.Scan().All(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	// Truncations anywhere in the directory area must error, not hang or
	// succeed partially.
	for cut := len(base) - 1; cut > len(base)-200; cut -= 7 {
		cf, err := ReadHeader(NewSeekBufferFrom(base[:cut]))
		if err != nil {
			continue
		}
		if _, err := cf.Scan().All(); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// TestDirAggregateMismatchCaughtByValidate: Validate cross-checks the
// stored version-2 aggregates against the entries.
func TestDirAggregateMismatchCaughtByValidate(t *testing.T) {
	sb, _ := writeRandomFile(t, 11, 300, CurrentHeaderVersion)
	base := sb.Bytes()
	f := openFile(t, sb)
	dirOff := f.FirstDir
	for _, field := range []int64{24, 32, 40} { // dirStart, dirEnd, dirRecords
		cf, err := ReadHeader(corrupt(base, func(b []byte) {
			binary.LittleEndian.PutUint64(b[dirOff+field:], 1<<40)
		}))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cf.Validate(profile.Standard()); err == nil {
			t.Errorf("aggregate corruption at +%d not caught by Validate", field)
		}
	}
}

// TestWriterRejectsUnknownVersion: future header versions must be
// refused by both writer and reader.
func TestWriterRejectsUnknownVersion(t *testing.T) {
	hdr := testHeader()
	hdr.HeaderVersion = CurrentHeaderVersion + 1
	if _, err := NewWriter(NewSeekBuffer(), hdr, WriterOptions{}); err == nil {
		t.Fatal("writer accepted a future header version")
	}
	sb, _ := writeRandomFile(t, 12, 10, CurrentHeaderVersion)
	b := append([]byte(nil), sb.Bytes()...)
	// The header version field sits at byte 12 (after magic and profile
	// version).
	binary.LittleEndian.PutUint32(b[12:], CurrentHeaderVersion+5)
	if _, err := ReadHeader(NewSeekBufferFrom(b)); err == nil {
		t.Fatal("reader accepted a future header version")
	}
}
