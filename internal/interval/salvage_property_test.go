package interval

import (
	"fmt"
	"reflect"
	"testing"

	"tracefw/internal/faultfs"
)

// The differential fault-injection harness: for every seeded fault
// (truncation, bit flip, torn-zeroed range) against every header
// version, salvage must
//
//  1. never panic,
//  2. recover every frame the fault did not touch (completeness), and
//  3. emit no frame or record absent from the pristine file
//     (soundness).
//
// "Touched" means the fault's byte range intersects the frame's
// payload, its directory entry, or its directory's header — damage to
// any of those legitimately costs the frame. For v1/v2, bit flips are
// drawn from the metadata regions only (directory headers and entry
// tables): those layouts carry no payload checksums, so a payload flip
// that still decodes is undetectable by design (the reason v3 exists).
// On v3 and v4 the flips range over the whole body, payload included —
// on v4 that also exercises the compact frame encoding's own decode
// validation underneath the CRC.

// pristineFile is the undamaged oracle a scenario compares against.
type pristineFile struct {
	bytes  []byte
	frames []FrameEntry
	// records[i] are the decoded records of frames[i].
	records [][]Record
	// critical[i] lists the byte ranges whose damage may cost frame i.
	critical [][]faultfs.Range
	// metadata lists every directory-header and entry-table range (the
	// v1/v2 bit-flip target set).
	metadata []faultfs.Range
	firstDir int64
}

func buildPristine(t *testing.T, version uint32, seed uint64, n int) *pristineFile {
	t.Helper()
	sb, _ := writeRandomFile(t, seed, n, version)
	p := &pristineFile{bytes: append([]byte(nil), sb.Bytes()...)}
	f := openFile(t, sb)
	p.firstDir = f.FirstDir
	dirs, err := f.Dirs()
	if err != nil {
		t.Fatal(err)
	}
	hdrSize := int64(dirHeaderSize(version))
	esz := int64(entrySize(version))
	for _, d := range dirs {
		hdrRange := faultfs.Range{Off: d.Offset, Len: hdrSize}
		p.metadata = append(p.metadata,
			hdrRange,
			faultfs.Range{Off: d.Offset + hdrSize, Len: int64(len(d.Entries)) * esz})
		for i, fe := range d.Entries {
			recs, err := f.FrameRecords(fe)
			if err != nil {
				t.Fatal(err)
			}
			p.frames = append(p.frames, fe)
			p.records = append(p.records, recs)
			p.critical = append(p.critical, []faultfs.Range{
				hdrRange,
				{Off: d.Offset + hdrSize + int64(i)*esz, Len: esz},
				{Off: fe.Offset, Len: int64(fe.Bytes)},
			})
		}
	}
	return p
}

// touched reports which pristine frames the fault may legitimately
// cost.
func (p *pristineFile) touched(f faultfs.Fault) []bool {
	out := make([]bool, len(p.frames))
	for i, crit := range p.critical {
		for _, r := range crit {
			if f.Range.Overlaps(r.Off, r.Len) {
				out[i] = true
				break
			}
		}
	}
	return out
}

// checkScenario salvages damaged bytes and verifies the differential
// properties against the pristine oracle.
func checkScenario(t *testing.T, p *pristineFile, damaged []byte, fault faultfs.Fault, label string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: salvage panicked: %v", label, r)
		}
	}()
	f, err := ReadHeader(NewSeekBufferFrom(damaged))
	if err != nil {
		// The fixed header / tables region is before FirstDir and is
		// never damaged by the harness, so open must succeed.
		t.Fatalf("%s: header no longer readable: %v", label, err)
	}
	sv := f.Salvage()

	touched := p.touched(fault)
	byOffset := map[int64]int{}
	for i, fe := range p.frames {
		byOffset[fe.Offset] = i
	}
	recovered := map[int64]bool{}
	for _, fe := range sv.Frames {
		i, ok := byOffset[fe.Offset]
		if !ok || p.frames[i] != fe {
			t.Fatalf("%s: salvage emitted frame %+v absent from the pristine file", label, fe)
		}
		recovered[fe.Offset] = true
		recs, err := f.FrameRecords(fe)
		if err != nil {
			t.Fatalf("%s: recovered frame at %d unreadable: %v", label, fe.Offset, err)
		}
		if !reflect.DeepEqual(recs, p.records[i]) {
			// Pre-checksum layouts cannot detect payload damage that
			// happens to parse consistently (the reason v3 exists), so
			// divergence is tolerated there for frames the fault touched.
			if f.Header.HeaderVersion >= 3 || !touched[i] {
				t.Fatalf("%s: frame at %d: records differ from pristine", label, fe.Offset)
			}
		}
	}
	for i, fe := range p.frames {
		if !touched[i] && !recovered[fe.Offset] {
			t.Fatalf("%s: frame at %d untouched by %v but not recovered (report %+v)",
				label, fe.Offset, fault, sv.Report)
		}
	}
}

// TestSalvageDifferential runs ≥ 200 seeded fault scenarios per header
// version: one-third truncations, one-third torn (zeroed) ranges,
// one-third bit flips.
func TestSalvageDifferential(t *testing.T) {
	const perKind = 70
	for _, version := range []uint32{1, 2, 3, CurrentHeaderVersion} {
		version := version
		t.Run(fmt.Sprintf("v%d", version), func(t *testing.T) {
			p := buildPristine(t, version, 1000+uint64(version), 700)
			body := int64(len(p.bytes)) - p.firstDir

			for seed := uint64(0); seed < perKind; seed++ {
				in := faultfs.New(seed*3 + uint64(version))
				damaged, fault := in.Truncate(p.bytes, p.firstDir)
				checkScenario(t, p, damaged, fault, fmt.Sprintf("v%d truncate seed %d", version, seed))
			}
			for seed := uint64(0); seed < perKind; seed++ {
				in := faultfs.New(seed*7 + 100 + uint64(version))
				damaged, fault := in.TearZero(p.bytes, p.firstDir, body/4)
				checkScenario(t, p, damaged, fault, fmt.Sprintf("v%d tear seed %d", version, seed))
			}
			for seed := uint64(0); seed < perKind; seed++ {
				in := faultfs.New(seed*11 + 200 + uint64(version))
				var damaged []byte
				var fault faultfs.Fault
				if version >= 3 {
					// Checksummed layout: flip anywhere in the body.
					damaged, fault = in.FlipBit(p.bytes, p.firstDir)
				} else {
					// No payload checksums: flip inside directory metadata,
					// where corruption is detectable.
					r := p.metadata[seed%uint64(len(p.metadata))]
					for r.Len == 0 {
						seed++
						r = p.metadata[seed%uint64(len(p.metadata))]
					}
					damaged, fault = in.FlipBitIn(p.bytes, r.Off, r.Off+r.Len)
				}
				checkScenario(t, p, damaged, fault, fmt.Sprintf("v%d flip seed %d", version, seed))
			}
		})
	}
}

// TestSalvageTornWriterCrash simulates a writer killed mid-run: records
// stream through a TornWriter whose horizon drops the tail, with no
// Close. Every directory whose header, entries, and frames landed
// fully below the horizon must salvage; nothing not in the clean
// reference file may appear.
func TestSalvageTornWriterCrash(t *testing.T) {
	for _, version := range []uint32{1, 2, 3, CurrentHeaderVersion} {
		// Clean reference: identical records, graceful Close.
		refBuf, _ := writeRandomFile(t, 31, 700, version)
		ref := openFile(t, refBuf)
		refDirs, err := ref.Dirs()
		if err != nil {
			t.Fatal(err)
		}
		refRecs := map[int64][]Record{}
		for _, d := range refDirs {
			for _, fe := range d.Entries {
				rs, err := ref.FrameRecords(fe)
				if err != nil {
					t.Fatal(err)
				}
				refRecs[fe.Offset] = rs
			}
		}
		size := int64(len(refBuf.Bytes()))
		for _, frac := range []int64{2, 3, 5, 7} {
			horizon := size * (frac - 1) / frac
			tw := faultfs.NewTornWriter(horizon)
			hdr := testHeader()
			hdr.HeaderVersion = version
			w, err := NewWriter(tw, hdr, WriterOptions{FrameBytes: 512, FramesPerDir: 4})
			if err != nil {
				t.Fatal(err)
			}
			_, recs := writeRandomFile(t, 31, 700, version) // regenerate the same records
			for i := range recs {
				if err := w.Add(&recs[i]); err != nil {
					t.Fatal(err)
				}
			}
			// No Close: the process died.

			f, err := ReadHeader(NewSeekBufferFrom(tw.Bytes()))
			if err != nil {
				t.Fatalf("v%d horizon %d: header unreadable: %v", version, horizon, err)
			}
			sv := f.Salvage()
			// Soundness: every recovered frame must exist in the clean file
			// with identical records. (The torn file's frame offsets match
			// the reference: same records, same options.)
			for _, fe := range sv.Frames {
				want, ok := refRecs[fe.Offset]
				if !ok {
					t.Fatalf("v%d horizon %d: salvage invented frame at %d", version, horizon, fe.Offset)
				}
				got, err := f.FrameRecords(fe)
				if err != nil || !reflect.DeepEqual(got, want) {
					t.Fatalf("v%d horizon %d: frame at %d differs from reference (%v)", version, horizon, fe.Offset, err)
				}
			}
			// Completeness: directories entirely below the horizon (header,
			// entries, frames, all but the final flushed group whose next
			// link points into the void) must be recovered.
			recovered := map[int64]bool{}
			for _, fe := range sv.Frames {
				recovered[fe.Offset] = true
			}
			for _, d := range refDirs {
				ext := d.Offset + int64(dirHeaderSize(version)) + int64(len(d.Entries)*entrySize(version))
				for _, fe := range d.Entries {
					if e := fe.Offset + int64(fe.Bytes); e > ext {
						ext = e
					}
				}
				if ext > horizon {
					continue
				}
				for _, fe := range d.Entries {
					if !recovered[fe.Offset] {
						t.Fatalf("v%d horizon %d: frame at %d below the horizon not recovered (report %+v)",
							version, horizon, fe.Offset, sv.Report)
					}
				}
			}
			if !sv.Report.Truncated && sv.Report.Clean() {
				t.Fatalf("v%d horizon %d: crash not reflected in report %+v", version, horizon, sv.Report)
			}
		}
	}
}

// TestSalvageBadSectors: unreadable sectors (media errors) must behave
// like any other damage — frames outside the poisoned ranges survive.
func TestSalvageBadSectors(t *testing.T) {
	p := buildPristine(t, CurrentHeaderVersion, 77, 600)
	for seed := uint64(0); seed < 20; seed++ {
		rng := faultfs.New(seed)
		_, fault := rng.TearZero(p.bytes, p.firstDir, int64(len(p.bytes))/8)
		bad := fault.Range
		f, err := ReadHeader(faultfs.NewBadSector(p.bytes, bad))
		if err != nil {
			t.Fatal(err)
		}
		sv := f.Salvage()
		touched := p.touched(faultfs.Fault{Kind: faultfs.TearZero, Range: bad})
		recovered := map[int64]bool{}
		for _, fe := range sv.Frames {
			recovered[fe.Offset] = true
		}
		for i, fe := range p.frames {
			if !touched[i] && !recovered[fe.Offset] {
				t.Fatalf("seed %d: frame at %d clear of bad sector %+v not recovered", seed, fe.Offset, bad)
			}
			if touched[i] && recovered[fe.Offset] {
				// A frame overlapping a bad sector can never be verified.
				t.Fatalf("seed %d: frame at %d overlapping bad sector %+v recovered", seed, fe.Offset, bad)
			}
		}
	}
}

// TestScannerThroughShortReads: the sequential read path must be
// byte-for-byte identical through a pathologically short-reading
// transport (the io.Reader contract allows partial reads).
func TestScannerThroughShortReads(t *testing.T) {
	sb, recs := writeRandomFile(t, 88, 400, CurrentHeaderVersion)
	f, err := ReadHeader(faultfs.NewShortReader(NewSeekBufferFrom(sb.Bytes()), 5, 3))
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("short-read scan yields %d records, want %d", len(got), len(recs))
	}
	want, err := openFile(t, sb).Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("short reads changed scan output")
	}
}
