package interval

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"

	"tracefw/internal/clock"
)

// FrameEntry describes one frame (paper §2.3.3): "Each entry contains a
// frame pointer indicating the starting offset of the frame, the size of
// the frame, the number of records in the frame, and the start time and
// end time of the frame."
type FrameEntry struct {
	Offset  int64
	Bytes   uint32
	Records uint32
	Start   clock.Time
	End     clock.Time
	// Sum is the CRC-32C of the frame's record bytes, stored by header
	// version 3; zero on older files. Frame reads verify it.
	Sum uint32
}

// FrameDir is one frame directory with its position and links.
type FrameDir struct {
	Offset int64
	Prev   int64 // 0 = none
	Next   int64 // 0 = none
	// Start/End/Records aggregate the directory's frames. Header
	// version 2 stores them in the directory header so window queries
	// can skip a directory without reading its entries; for version-1
	// files they are reconstructed from the entries when the directory
	// is read.
	Start   clock.Time
	End     clock.Time
	Records int64
	Entries []FrameEntry
	// sum is the stored v3 metadata checksum, verified once the entry
	// table has been read.
	sum uint32
}

// Overlaps reports whether the directory's frames can intersect the
// window [lo, hi]. An empty directory overlaps nothing.
func (d *FrameDir) Overlaps(lo, hi clock.Time) bool {
	return d.Records > 0 && d.End >= lo && d.Start <= hi
}

// File provides random and sequential access to an interval file.
type File struct {
	Header   Header
	FirstDir int64
	// Size is the total file size, used to bound every offset and length
	// read from the file so corrupted metadata cannot trigger huge
	// allocations. For a live-tail snapshot (WithLiveTail) it is the
	// sealed prefix length, which may be shorter than the on-disk file.
	Size int64

	// live marks a WithLiveTail snapshot: a directory whose next link
	// equals Size is the (speculative) end of the chain, and a chain
	// that would start exactly at Size is an empty trace. Both
	// conditions are impossible on a closed file, where the final link
	// has been patched to 0.
	live bool

	r      io.ReadSeeker
	ra     io.ReaderAt // non-nil when r supports ReadAt (concurrent frame reads)
	closer io.Closer
	// closed flips once on the first Close; every read path checks it so
	// a closed File fails with ErrClosed instead of an os-level error
	// from a dead handle.
	closed atomic.Bool
	// verifySums gates per-frame payload checksum verification (v3+);
	// set from WithVerifyChecksums at open, default true. Salvage does
	// not consult it.
	verifySums bool
	// hook, when non-nil, intercepts frame decodes (DecodeFrame, the
	// map-reduce engine, scanners): serving layers use it to answer from
	// a decoded-frame cache. Set it before the File is shared between
	// goroutines.
	hook FrameDecoder
	// dirs/dirAt hold the preloaded directory chain (Preload): when
	// non-nil, every directory-metadata operation is answered from
	// memory without touching r's seek offset.
	dirs  []*FrameDir
	dirAt map[int64]*FrameDir
	// decoded counts frame payload reads; tests use it to assert that
	// window queries touch only the frames overlapping the window.
	decoded atomic.Int64
	// pyr is the attached summary pyramid (AttachPyramid, or the
	// sidecar auto-load in Open); nil means SummarizeWindow always
	// scans. Set before the File is shared between goroutines.
	pyr *Pyramid
}

// ErrClosed is returned by reads on a File after Close. It is distinct
// from the underlying os error so servers that close traces under load
// can recognize the condition.
var ErrClosed = errors.New("interval: file already closed")

// FrameDecoder supplies the decoded records of a frame, typically from
// a cache shared between readers of the same file. A decoder's miss
// path must call DecodeFrameDirect (never DecodeFrame, which would
// recurse). Records handed out by a decoder are shared: callers must
// treat them, including their Extra/Vec slices, as read-only.
type FrameDecoder func(f *File, fe FrameEntry) ([]Record, error)

// SetFrameDecoder installs (or, with nil, removes) the frame-decode
// hook. It must be called before the File is used from multiple
// goroutines; the field is read without synchronization.
func (f *File) SetFrameDecoder(h FrameDecoder) { f.hook = h }

// DecodedFrames returns how many frame payloads have been read from the
// file so far (every ReadFrame/Scanner frame load counts once).
func (f *File) DecodedFrames() int64 { return f.decoded.Load() }

// readFileHeader parses the header, thread table, and marker table (the
// paper's readHeader), leaving the file positioned at the first frame
// directory. NewFile and Open wrap it with option handling.
func readFileHeader(r io.ReadSeeker) (*File, error) {
	size, err := r.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, err
	}
	var fixed [fixedHeaderSize]byte
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, fmt.Errorf("interval: reading header: %w", err)
	}
	if string(fixed[:8]) != fileMagic {
		return nil, fmt.Errorf("interval: bad magic %q", fixed[:8])
	}
	f := &File{r: r, Size: size, verifySums: true}
	f.Header.ProfileVersion = binary.LittleEndian.Uint32(fixed[8:])
	f.Header.HeaderVersion = binary.LittleEndian.Uint32(fixed[12:])
	nThreads := binary.LittleEndian.Uint32(fixed[16:])
	f.Header.FieldMask = binary.LittleEndian.Uint16(fixed[20:])
	nMarkers := binary.LittleEndian.Uint32(fixed[24:])

	if f.Header.HeaderVersion > CurrentHeaderVersion {
		return nil, fmt.Errorf("interval: unsupported header version %d (current is %d)", f.Header.HeaderVersion, CurrentHeaderVersion)
	}
	if int64(nThreads)*threadEntrySize > size {
		return nil, fmt.Errorf("interval: thread table (%d entries) exceeds file size %d", nThreads, size)
	}
	// Each marker needs at least its 10-byte fixed header; bounding the
	// count up front turns a corrupt header into a clear error instead
	// of a long sequence of short reads.
	if int64(nThreads)*threadEntrySize+int64(nMarkers)*10 > size {
		return nil, fmt.Errorf("interval: marker table (%d entries) exceeds file size %d", nMarkers, size)
	}
	tt := make([]byte, int(nThreads)*threadEntrySize)
	if _, err := io.ReadFull(r, tt); err != nil {
		return nil, fmt.Errorf("interval: reading thread table: %w", err)
	}
	for i := 0; i < int(nThreads); i++ {
		b := tt[i*threadEntrySize:]
		f.Header.Threads = append(f.Header.Threads, ThreadEntry{
			Task:   int32(binary.LittleEndian.Uint32(b[0:])),
			PID:    binary.LittleEndian.Uint64(b[4:]),
			SysTID: binary.LittleEndian.Uint64(b[12:]),
			Node:   binary.LittleEndian.Uint16(b[20:]),
			LTID:   binary.LittleEndian.Uint16(b[22:]),
			Type:   b[24],
		})
	}
	f.Header.Markers = make(map[uint64]string, nMarkers)
	for i := 0; i < int(nMarkers); i++ {
		var mh [10]byte
		if _, err := io.ReadFull(r, mh[:]); err != nil {
			return nil, fmt.Errorf("interval: reading marker table: %w", err)
		}
		id := binary.LittleEndian.Uint64(mh[0:])
		sl := int(binary.LittleEndian.Uint16(mh[8:]))
		s := make([]byte, sl)
		if _, err := io.ReadFull(r, s); err != nil {
			return nil, fmt.Errorf("interval: reading marker string: %w", err)
		}
		f.Header.Markers[id] = string(s)
	}
	pos, err := r.Seek(0, io.SeekCurrent)
	if err != nil {
		return nil, err
	}
	f.FirstDir = pos
	if ra, ok := r.(io.ReaderAt); ok {
		f.ra = ra
	}
	if c, ok := r.(io.Closer); ok {
		f.closer = c
	}
	return f, nil
}

// Close closes the underlying file if the File owns one. It is
// idempotent and safe to call concurrently with reads: the first call
// closes, every later call returns nil, and reads that race with or
// follow Close fail with ErrClosed.
func (f *File) Close() error {
	if !f.closed.CompareAndSwap(false, true) {
		return nil
	}
	if f.closer != nil {
		return f.closer.Close()
	}
	return nil
}

// closedErr maps a read error on a closed (or concurrently closing)
// File to ErrClosed so callers see one distinct sentinel instead of an
// os-level error from a dead handle.
func (f *File) closedErr(err error) error {
	if f.closed.Load() || errors.Is(err, os.ErrClosed) {
		return ErrClosed
	}
	return err
}

// Preload reads the whole directory chain once and keeps it in memory.
// Afterwards every directory-metadata operation — Dirs, Frames,
// FramesInWindow, FrameContaining, Stats, and scanner positioning — is
// answered from memory without touching the underlying reader or its
// seek offset, which (together with positioned frame reads, see
// ConcurrentReads) makes the File safe for concurrent window queries.
// Long-running serving layers call it at registration time.
func (f *File) Preload() error {
	dirs, err := f.Dirs()
	if err != nil {
		return err
	}
	at := make(map[int64]*FrameDir, len(dirs))
	for _, d := range dirs {
		at[d.Offset] = d
	}
	f.dirs, f.dirAt = dirs, at
	return nil
}

// Preloaded reports whether the directory chain is resident in memory.
func (f *File) Preloaded() bool { return f.dirs != nil }

// MarkerString retrieves a marker string by identifier (the paper's
// marker-table lookup routine).
func (f *File) MarkerString(id uint64) (string, bool) {
	s, ok := f.Header.Markers[id]
	return s, ok
}

// ReadFrameDir reads the frame directory at offset (the paper's
// readFrameDir when given FirstDir). The paper points out a user need
// not read any directory except the first: the Prev/Next links and the
// Scanner handle the rest.
func (f *File) ReadFrameDir(offset int64) (*FrameDir, error) {
	d, n, err := f.readDirHeader(offset)
	if err != nil {
		return nil, err
	}
	if err := f.readDirEntries(d, n); err != nil {
		return nil, err
	}
	return d, nil
}

// readDirHeader reads only a directory's fixed header: entry count,
// links, and (header version 2) the aggregate bounds. Window queries
// use it to decide whether a directory's entries are worth reading at
// all. The entry count is returned for readDirEntries; for version-1
// files the aggregate fields stay zero until the entries are read.
func (f *File) readDirHeader(offset int64) (*FrameDir, int, error) {
	if f.dirAt != nil {
		// Preloaded chain: the directory (entries included) is resident;
		// nothing touches the reader or its seek offset.
		if d, ok := f.dirAt[offset]; ok {
			return d, len(d.Entries), nil
		}
		return nil, 0, fmt.Errorf("interval: no preloaded directory at offset %d", offset)
	}
	if f.closed.Load() {
		return nil, 0, ErrClosed
	}
	if f.live && offset == f.Size {
		// Live snapshot taken before the first directory sealed (or, on
		// a later walk, a FirstDir that still points past the sealed
		// prefix): synthesize the empty end-of-chain directory the
		// writer has not flushed yet.
		return &FrameDir{Offset: offset}, 0, nil
	}
	hdrSize := dirHeaderSize(f.Header.HeaderVersion)
	if _, err := f.r.Seek(offset, io.SeekStart); err != nil {
		return nil, 0, f.closedErr(err)
	}
	var hb [dirHeaderV3Size]byte
	h := hb[:hdrSize]
	if _, err := io.ReadFull(f.r, h); err != nil {
		return nil, 0, f.closedErr(fmt.Errorf("interval: reading frame directory at %d: %w", offset, err))
	}
	d := &FrameDir{
		Offset: offset,
		Prev:   int64(binary.LittleEndian.Uint64(h[8:])),
		Next:   int64(binary.LittleEndian.Uint64(h[16:])),
	}
	if f.live && d.Next == f.Size {
		// The writer's speculative next link: the following directory
		// has not sealed yet, so this is the end of the chain.
		d.Next = 0
	}
	if f.Header.HeaderVersion >= 3 && binary.LittleEndian.Uint32(h[4:]) != dirMagic {
		return nil, 0, fmt.Errorf("interval: directory at %d has bad magic %#x", offset, binary.LittleEndian.Uint32(h[4:]))
	}
	if d.Next < 0 || d.Next > f.Size || d.Prev < 0 || d.Prev > f.Size {
		return nil, 0, fmt.Errorf("interval: directory at %d has out-of-file links (prev %d, next %d)", offset, d.Prev, d.Next)
	}
	n := int(binary.LittleEndian.Uint32(h[0:]))
	if offset+int64(hdrSize)+int64(n)*int64(entrySize(f.Header.HeaderVersion)) > f.Size {
		return nil, 0, fmt.Errorf("interval: directory at %d claims %d entries beyond file size", offset, n)
	}
	if f.Header.HeaderVersion >= 2 {
		d.Start = clock.Time(binary.LittleEndian.Uint64(h[24:]))
		d.End = clock.Time(binary.LittleEndian.Uint64(h[32:]))
		d.Records = int64(binary.LittleEndian.Uint64(h[40:]))
		if d.Records < 0 || d.Records*minRecordBytes(f.Header.HeaderVersion) > f.Size {
			return nil, 0, fmt.Errorf("interval: directory at %d claims %d records in a %d-byte file", offset, d.Records, f.Size)
		}
	}
	if f.Header.HeaderVersion >= 3 {
		d.sum = binary.LittleEndian.Uint32(h[48:])
		if n == 0 && dirChecksum(0, d.Start, d.End, uint64(d.Records), nil) != d.sum {
			return nil, 0, fmt.Errorf("interval: directory at %d fails metadata checksum", offset)
		}
	}
	return d, n, nil
}

// readDirEntries reads and validates the n frame entries following a
// directory header. For version-1 files it also reconstructs the
// directory's aggregate bounds from the entries (the lazy path for old
// files).
func (f *File) readDirEntries(d *FrameDir, n int) error {
	if n == 0 || f.dirAt != nil {
		// Preloaded directories carry their entries already.
		return nil
	}
	if f.closed.Load() {
		return ErrClosed
	}
	ver := f.Header.HeaderVersion
	esz := entrySize(ver)
	entOff := d.Offset + int64(dirHeaderSize(ver))
	if _, err := f.r.Seek(entOff, io.SeekStart); err != nil {
		return err
	}
	eb := make([]byte, n*esz)
	if _, err := io.ReadFull(f.r, eb); err != nil {
		return f.closedErr(fmt.Errorf("interval: reading %d frame entries: %w", n, err))
	}
	if ver >= 3 {
		if dirChecksum(uint32(n), d.Start, d.End, uint64(d.Records), eb) != d.sum {
			return fmt.Errorf("interval: directory at %d fails metadata checksum", d.Offset)
		}
	}
	d.Entries = make([]FrameEntry, 0, n)
	for i := 0; i < n; i++ {
		b := eb[i*esz:]
		fe := FrameEntry{
			Offset:  int64(binary.LittleEndian.Uint64(b[0:])),
			Bytes:   binary.LittleEndian.Uint32(b[8:]),
			Records: binary.LittleEndian.Uint32(b[12:]),
			Start:   clock.Time(binary.LittleEndian.Uint64(b[16:])),
			End:     clock.Time(binary.LittleEndian.Uint64(b[24:])),
		}
		if ver >= 3 {
			fe.Sum = binary.LittleEndian.Uint32(b[32:])
		}
		// Reject corrupt entries here so every consumer (scanners, the
		// map-reduce engine, record preallocation from Records) sees
		// only frames that can physically exist in this file.
		if fe.Offset < 0 || fe.Offset > f.Size || int64(fe.Bytes) > f.Size || fe.Offset+int64(fe.Bytes) > f.Size {
			return fmt.Errorf("interval: directory at %d entry %d: frame at %d (%d bytes) exceeds file size %d", d.Offset, i, fe.Offset, fe.Bytes, f.Size)
		}
		if int64(fe.Records)*minRecordBytes(ver) > int64(fe.Bytes) {
			return fmt.Errorf("interval: directory at %d entry %d: %d records cannot fit in %d bytes", d.Offset, i, fe.Records, fe.Bytes)
		}
		d.Entries = append(d.Entries, fe)
	}
	if f.Header.HeaderVersion < 2 {
		d.Start, d.End, d.Records = d.Entries[0].Start, d.Entries[0].End, 0
		for _, fe := range d.Entries {
			if fe.Start < d.Start {
				d.Start = fe.Start
			}
			if fe.End > d.End {
				d.End = fe.End
			}
			d.Records += int64(fe.Records)
		}
	}
	return nil
}

// Dirs returns every frame directory in file order. A corrupted link
// that revisits an offset is reported as an error rather than looping.
// After Preload the resident chain is returned directly; callers must
// treat it as read-only.
func (f *File) Dirs() ([]*FrameDir, error) {
	if f.dirs != nil {
		return f.dirs, nil
	}
	var dirs []*FrameDir
	seen := map[int64]bool{}
	off := f.FirstDir
	for {
		if seen[off] {
			return nil, fmt.Errorf("interval: frame directory cycle at offset %d", off)
		}
		seen[off] = true
		d, err := f.ReadFrameDir(off)
		if err != nil {
			return nil, err
		}
		dirs = append(dirs, d)
		if d.Next == 0 {
			return dirs, nil
		}
		off = d.Next
	}
}

// Frames returns every frame entry in file order.
func (f *File) Frames() ([]FrameEntry, error) {
	dirs, err := f.Dirs()
	if err != nil {
		return nil, err
	}
	var fes []FrameEntry
	for _, d := range dirs {
		fes = append(fes, d.Entries...)
	}
	return fes, nil
}

// FramesInWindow returns the frame entries whose time range overlaps
// [lo, hi], in file order, using only directory metadata. On version-2
// files, directories whose aggregate bounds miss the window entirely
// are skipped without even reading their entry tables.
func (f *File) FramesInWindow(lo, hi clock.Time) ([]FrameEntry, error) {
	var out []FrameEntry
	v2 := f.Header.HeaderVersion >= 2
	seen := map[int64]bool{}
	off := f.FirstDir
	for {
		if seen[off] {
			return nil, fmt.Errorf("interval: frame directory cycle at offset %d", off)
		}
		seen[off] = true
		d, n, err := f.readDirHeader(off)
		if err != nil {
			return nil, err
		}
		if !(v2 && n > 0 && !d.Overlaps(lo, hi)) {
			if err := f.readDirEntries(d, n); err != nil {
				return nil, err
			}
			for _, fe := range d.Entries {
				if fe.End >= lo && fe.Start <= hi {
					out = append(out, fe)
				}
			}
		}
		if d.Next == 0 {
			return out, nil
		}
		off = d.Next
	}
}

// ReadFrame loads a frame's raw record bytes.
func (f *File) ReadFrame(fe FrameEntry) ([]byte, error) {
	return f.readFrameInto(fe, nil)
}

// ReadFrameAt loads a frame's raw record bytes with a positioned read,
// never touching the file's seek offset — safe for concurrent use from
// multiple goroutines. It requires the underlying reader to implement
// io.ReaderAt (os.File and SeekBuffer both do); callers that need a
// fallback should check ConcurrentReads first.
func (f *File) ReadFrameAt(fe FrameEntry, buf []byte) ([]byte, error) {
	if f.ra == nil {
		return nil, errors.New("interval: underlying reader does not support ReadAt")
	}
	if f.closed.Load() {
		return nil, ErrClosed
	}
	if fe.Offset < 0 || int64(fe.Bytes) > f.Size || fe.Offset+int64(fe.Bytes) > f.Size {
		return nil, fmt.Errorf("interval: frame at %d (%d bytes) exceeds file size %d", fe.Offset, fe.Bytes, f.Size)
	}
	if cap(buf) < int(fe.Bytes) {
		buf = make([]byte, fe.Bytes)
	} else {
		buf = buf[:fe.Bytes]
	}
	if _, err := f.ra.ReadAt(buf, fe.Offset); err != nil {
		return nil, f.closedErr(fmt.Errorf("interval: reading frame at %d: %w", fe.Offset, err))
	}
	if err := f.checkFrameSum(fe, buf); err != nil {
		return nil, err
	}
	f.decoded.Add(1)
	return buf, nil
}

// checkFrameSum verifies a frame's stored payload checksum on version-3
// files; older versions store none, and WithVerifyChecksums(false)
// skips the pass (Salvage runs its own unconditional check).
func (f *File) checkFrameSum(fe FrameEntry, buf []byte) error {
	if f.verifySums && f.Header.HeaderVersion >= 3 && crc32.Checksum(buf, crcTable) != fe.Sum {
		return fmt.Errorf("interval: frame at %d fails payload checksum", fe.Offset)
	}
	return nil
}

// ConcurrentReads reports whether the file supports ReadFrameAt, i.e.
// whether the parallel map-reduce engine can decode frames from worker
// goroutines.
func (f *File) ConcurrentReads() bool { return f.ra != nil }

// readFrameInto loads a frame's raw record bytes into buf's backing
// array when it is large enough, allocating otherwise. The Scanner uses
// it to reuse one pooled buffer across all frames of a scan.
func (f *File) readFrameInto(fe FrameEntry, buf []byte) ([]byte, error) {
	if f.closed.Load() {
		return nil, ErrClosed
	}
	if fe.Offset < 0 || int64(fe.Bytes) > f.Size || fe.Offset+int64(fe.Bytes) > f.Size {
		return nil, fmt.Errorf("interval: frame at %d (%d bytes) exceeds file size %d", fe.Offset, fe.Bytes, f.Size)
	}
	if _, err := f.r.Seek(fe.Offset, io.SeekStart); err != nil {
		return nil, f.closedErr(err)
	}
	if cap(buf) < int(fe.Bytes) {
		buf = make([]byte, fe.Bytes)
	} else {
		buf = buf[:fe.Bytes]
	}
	if _, err := io.ReadFull(f.r, buf); err != nil {
		return nil, f.closedErr(fmt.Errorf("interval: reading frame at %d: %w", fe.Offset, err))
	}
	if err := f.checkFrameSum(fe, buf); err != nil {
		return nil, err
	}
	f.decoded.Add(1)
	return buf, nil
}

// FrameRecords decodes every record of a frame with a fresh read,
// ignoring any frame-decode hook.
func (f *File) FrameRecords(fe FrameEntry) ([]Record, error) {
	buf, err := f.ReadFrame(fe)
	if err != nil {
		return nil, err
	}
	return decodeFrameRecords(f.Header.HeaderVersion, fe, buf)
}

// DecodeFrame returns fe's decoded records through the frame-decode
// hook when one is installed (a cache hit costs no read and no decode),
// falling back to DecodeFrameDirect. The result may be shared with
// other callers and must be treated as read-only.
func (f *File) DecodeFrame(fe FrameEntry) ([]Record, error) {
	if f.hook != nil {
		return f.hook(f, fe)
	}
	return f.DecodeFrameDirect(fe)
}

// DecodeFrameDirect reads and decodes fe, bypassing the frame-decode
// hook — it is the miss path a FrameDecoder itself must use. The read
// is positioned (never moving the file's seek offset) whenever the
// underlying reader supports it, so concurrent calls are safe on such
// files.
func (f *File) DecodeFrameDirect(fe FrameEntry) ([]Record, error) {
	pb := getBuf()
	var buf []byte
	var err error
	if f.ra != nil {
		buf, err = f.ReadFrameAt(fe, *pb)
	} else {
		buf, err = f.readFrameInto(fe, *pb)
	}
	if buf != nil {
		*pb = buf[:0]
	}
	if err != nil {
		putBuf(pb)
		return nil, err
	}
	recs, err := decodeFrameRecords(f.Header.HeaderVersion, fe, buf)
	putBuf(pb)
	return recs, err
}

// decodeFrameRecords decodes a frame's already-read (and
// checksum-verified) payload and cross-checks the record count claimed
// by the directory entry. Extra/Vec slices come from one arena, so a
// frame costs O(1) allocations instead of one per record; the records
// own their blocks and may be retained (the MapFrames contract).
func decodeFrameRecords(version uint32, fe FrameEntry, buf []byte) ([]Record, error) {
	var cur frameCursor
	if err := cur.init(version, buf); err != nil {
		return nil, err
	}
	recs := make([]Record, 0, fe.Records)
	var a u64Arena
	for len(cur.buf) > 0 {
		var r Record
		if err := cur.next(&r, &a); err != nil {
			return nil, err
		}
		recs = append(recs, r)
	}
	if len(recs) != int(fe.Records) {
		return nil, fmt.Errorf("interval: frame claims %d records, found %d", fe.Records, len(recs))
	}
	return recs, nil
}

// FrameContaining locates the first frame whose time range covers t,
// using only directory metadata — the fast seek the format exists for.
// ok is false when t is after the last frame.
func (f *File) FrameContaining(t clock.Time) (FrameEntry, bool, error) {
	v2 := f.Header.HeaderVersion >= 2
	off := f.FirstDir
	for {
		d, n, err := f.readDirHeader(off)
		if err != nil {
			return FrameEntry{}, false, err
		}
		if v2 && n > 0 && d.End < t {
			// Aggregate bounds say every frame here ends before t: follow
			// the next link without reading the entry table.
			if d.Next == 0 {
				return FrameEntry{}, false, nil
			}
			off = d.Next
			continue
		}
		if err := f.readDirEntries(d, n); err != nil {
			return FrameEntry{}, false, err
		}
		if n := len(d.Entries); n > 0 && d.Entries[n-1].End >= t {
			// Frames are end-time ordered: binary search the first frame
			// with End >= t inside this directory.
			lo, hi := 0, n-1
			for lo < hi {
				mid := (lo + hi) / 2
				if d.Entries[mid].End >= t {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			return d.Entries[lo], true, nil
		}
		if d.Next == 0 {
			return FrameEntry{}, false, nil
		}
		off = d.Next
	}
}

// Stats aggregates frame-directory information: total elapsed time and
// total record count (paper §2.4's aggregate routines). On version-2
// files only the directory headers are read — the per-directory
// aggregates answer the question without touching any entry table.
func (f *File) Stats() (first, last clock.Time, records int64, err error) {
	if f.Header.HeaderVersion >= 2 {
		seen := map[int64]bool{}
		off := f.FirstDir
		any := false
		for {
			if seen[off] {
				return 0, 0, 0, fmt.Errorf("interval: frame directory cycle at offset %d", off)
			}
			seen[off] = true
			d, n, derr := f.readDirHeader(off)
			if derr != nil {
				return 0, 0, 0, derr
			}
			if n > 0 {
				if !any || d.Start < first {
					first = d.Start
				}
				if d.End > last {
					last = d.End
				}
				records += d.Records
				any = true
			}
			if d.Next == 0 {
				return first, last, records, nil
			}
			off = d.Next
		}
	}
	fes, err := f.Frames()
	if err != nil {
		return 0, 0, 0, err
	}
	if len(fes) == 0 {
		return 0, 0, 0, nil
	}
	first = fes[0].Start
	for _, fe := range fes {
		if fe.Start < first {
			first = fe.Start
		}
		if fe.End > last {
			last = fe.End
		}
		records += int64(fe.Records)
	}
	return first, last, records, nil
}

// Scanner iterates records sequentially across all frames and
// directories, hiding the structure (the paper's getInterval loop).
type Scanner struct {
	f       *File
	dir     *FrameDir
	frame   int
	buf     []byte
	err     error
	started bool
	// win restricts the scan to frames overlapping [winLo, winHi];
	// version-2 directories whose aggregate bounds miss the window are
	// skipped without reading their entry tables.
	win          bool
	winLo, winHi clock.Time
	// ctx, when non-nil, aborts the scan between frames once it is
	// cancelled (SetContext / ScanWindowCtx). Cancellation is checked
	// per frame, not per record, so a cancelled long scan stops within
	// one frame's worth of records.
	ctx context.Context
	// recs/recIdx serve frames obtained from the file's frame-decode
	// hook (cached, already-decoded records); buf stays empty then.
	recs   []Record
	recIdx int
	// frameBuf is the pooled backing buffer the current frame was read
	// into; it is returned to the pool once the scan terminates.
	frameBuf *[]byte
	// cur decodes the current frame on v4 files (dictionary and base
	// start are frame-local); buf mirrors cur.buf there so the
	// "frame exhausted" check is shared across versions.
	cur frameCursor
	// arena backs the Extra/Vec slices of records returned by NextRecord
	// and All, replacing one allocation per record with one per ~4096
	// field values. Chunks are never reused, so the records stay valid
	// after the scan.
	arena u64Arena
	// scratch/pbuf serve Next on v4 files: the record is decoded into
	// scratch and re-encoded fixed-width into pbuf.
	scratch Record
	pbuf    []byte
}

// Scan returns a sequential record scanner positioned before the first
// record.
func (f *File) Scan() *Scanner { return &Scanner{f: f} }

// ScanWindow returns a scanner restricted to the frames whose time
// range overlaps [lo, hi]. Frames (and, on version-2 files, whole
// directories) outside the window are never decoded; records inside a
// decoded frame are all produced, including any that spill past the
// window edges, so callers filter records the same way they would after
// a full scan.
func (f *File) ScanWindow(lo, hi clock.Time) *Scanner {
	return &Scanner{f: f, win: true, winLo: lo, winHi: hi}
}

// ScanWindowCtx is ScanWindow with a context: the scan fails with the
// context's error at the next frame boundary after cancellation.
// Servers use it to honor request deadlines; batch callers pass
// context.Background() (or just use ScanWindow).
func (f *File) ScanWindowCtx(ctx context.Context, lo, hi clock.Time) *Scanner {
	return &Scanner{f: f, ctx: ctx, win: true, winLo: lo, winHi: hi}
}

// SetContext attaches a cancellation context to the scanner; see
// ScanWindowCtx. It must be called before scanning starts.
func (s *Scanner) SetContext(ctx context.Context) { s.ctx = ctx }

// SeekTime repositions the scanner immediately before the first frame
// whose end time is at or after t, using only directory metadata — the
// fast seek the frame directory exists for. Scanning then proceeds to
// the end of the file (or window). Seeking past the last frame leaves
// the scanner at EOF. A previous io.EOF state is cleared; a real error
// is not.
func (s *Scanner) SeekTime(t clock.Time) error {
	if s.err != nil && !errors.Is(s.err, io.EOF) {
		return s.err
	}
	s.err = nil
	s.buf = nil
	s.started = true
	s.dir = nil
	v2 := s.f.Header.HeaderVersion >= 2
	seen := map[int64]bool{}
	off := s.f.FirstDir
	for {
		if seen[off] {
			s.err = fmt.Errorf("interval: frame directory cycle at offset %d", off)
			s.release()
			return s.err
		}
		seen[off] = true
		d, n, err := s.f.readDirHeader(off)
		if err != nil {
			s.err = err
			s.release()
			return err
		}
		if v2 && n > 0 && d.End < t {
			// Entire directory ends before t: skip its entry table.
			if d.Next == 0 {
				return nil
			}
			off = d.Next
			continue
		}
		if err := s.f.readDirEntries(d, n); err != nil {
			s.err = err
			s.release()
			return err
		}
		if n > 0 && d.Entries[n-1].End >= t {
			// Frames are end-time ordered: binary search the first frame
			// with End >= t inside this directory.
			lo, hi := 0, n-1
			for lo < hi {
				mid := (lo + hi) / 2
				if d.Entries[mid].End >= t {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			s.dir = d
			s.frame = lo
			return nil
		}
		if d.Next == 0 {
			return nil
		}
		off = d.Next
	}
}

// ensure positions the scanner on a frame with undecoded records,
// loading directories and frames as needed.
func (s *Scanner) ensure() error {
	if s.err != nil {
		return s.err
	}
	for len(s.buf) == 0 && s.recIdx >= len(s.recs) {
		if err := s.advanceFrame(); err != nil {
			s.err = err
			s.release()
			return err
		}
	}
	return nil
}

// fail records a mid-frame decode error; the scanner is sticky after it.
func (s *Scanner) fail(err error) error {
	s.err = err
	s.release()
	return err
}

// Next returns the next record's payload bytes in the fixed-width
// encoding, or io.EOF after the last record. On v4 files the payload is
// synthesized from the compact frame encoding, so consumers of raw
// payload bytes see every header version identically. The returned
// slice is valid until the following call.
func (s *Scanner) Next() ([]byte, error) {
	if err := s.ensure(); err != nil {
		return nil, err
	}
	if s.recIdx < len(s.recs) {
		// Hook-decoded frame: synthesize the fixed-width payload from
		// the cached record, exactly as the v4 path does.
		s.pbuf = s.recs[s.recIdx].AppendPayload(s.pbuf[:0])
		s.recIdx++
		return s.pbuf, nil
	}
	if s.f.Header.HeaderVersion >= 4 {
		if err := s.cur.next(&s.scratch, nil); err != nil {
			return nil, s.fail(err)
		}
		s.buf = s.cur.buf
		s.pbuf = s.scratch.AppendPayload(s.pbuf[:0])
		return s.pbuf, nil
	}
	payload, n, err := NextFramed(s.buf)
	if err != nil {
		return nil, s.fail(err)
	}
	s.buf = s.buf[n:]
	return payload, nil
}

// NextRecord decodes the next record. The record's Extra/Vec slices are
// carved from the scanner's chunked arena: they stay valid after the
// scan and after further NextRecord calls, they share backing chunks
// with other records from the same scanner, and they are
// capacity-clamped so appending to one never overwrites another.
func (s *Scanner) NextRecord() (Record, error) {
	var r Record
	if err := s.ensure(); err != nil {
		return r, err
	}
	if s.recIdx < len(s.recs) {
		// Hook-decoded frame: the record (and its Extra/Vec slices) is
		// shared with the cache — callers must not mutate it.
		r = s.recs[s.recIdx]
		s.recIdx++
		return r, nil
	}
	if s.f.Header.HeaderVersion >= 4 {
		if err := s.cur.next(&r, &s.arena); err != nil {
			return Record{}, s.fail(err)
		}
		s.buf = s.cur.buf
		return r, nil
	}
	payload, n, err := NextFramed(s.buf)
	if err != nil {
		return r, s.fail(err)
	}
	s.buf = s.buf[n:]
	if err := decodePayload(payload, &r, &s.arena); err != nil {
		return Record{}, s.fail(err)
	}
	return r, nil
}

// NextRecordInto decodes the next record into *r, reusing r's Extra and
// Vec capacity — the decoded slices alias r's previous ones, so a
// record must be consumed (or copied) before the next call overwrites
// it. Hot sequential consumers (merge sources, clock-pair extraction)
// use it to avoid one allocation per record; on v4 files the varints
// decode straight into *r with no intermediate payload.
func (s *Scanner) NextRecordInto(r *Record) error {
	if err := s.ensure(); err != nil {
		return err
	}
	if s.recIdx < len(s.recs) {
		// Hook-decoded frame: *r's slices alias the shared cached
		// record; consumers must copy before mutating.
		*r = s.recs[s.recIdx]
		s.recIdx++
		return nil
	}
	if s.f.Header.HeaderVersion >= 4 {
		if err := s.cur.next(r, nil); err != nil {
			return s.fail(err)
		}
		s.buf = s.cur.buf
		return nil
	}
	payload, n, err := NextFramed(s.buf)
	if err != nil {
		return s.fail(err)
	}
	s.buf = s.buf[n:]
	if err := DecodePayloadInto(payload, r); err != nil {
		return s.fail(err)
	}
	return nil
}

// All drains the scanner. The result slice is sized up front from the
// frame directories' record counts when the scan starts at the
// beginning of the file.
func (s *Scanner) All() ([]Record, error) {
	var recs []Record
	if !s.started && s.err == nil {
		fes, err := s.f.Frames()
		if s.win && err == nil {
			kept := fes[:0:0]
			for _, fe := range fes {
				if fe.End >= s.winLo && fe.Start <= s.winHi {
					kept = append(kept, fe)
				}
			}
			fes = kept
		}
		if err == nil {
			var total int64
			for _, fe := range fes {
				total += int64(fe.Records)
			}
			recs = make([]Record, 0, total)
		}
	}
	for {
		r, err := s.NextRecord()
		if errors.Is(err, io.EOF) {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, r)
	}
}

func (s *Scanner) advanceFrame() error {
	s.recs, s.recIdx = nil, 0
	for {
		if s.dir == nil {
			if s.started {
				return io.EOF
			}
			s.started = true
			if err := s.loadDir(s.f.FirstDir); err != nil {
				return err
			}
			if s.dir == nil {
				return io.EOF
			}
		}
		if s.frame < len(s.dir.Entries) {
			fe := s.dir.Entries[s.frame]
			s.frame++
			if s.win && (fe.End < s.winLo || fe.Start > s.winHi) {
				continue
			}
			if s.ctx != nil {
				if err := s.ctx.Err(); err != nil {
					return err
				}
			}
			if s.f.hook != nil {
				recs, err := s.f.hook(s.f, fe)
				if err != nil {
					return err
				}
				if len(recs) == 0 {
					continue
				}
				s.recs, s.recIdx = recs, 0
				return nil
			}
			if s.frameBuf == nil {
				s.frameBuf = getBuf()
			}
			buf, err := s.f.readFrameInto(fe, *s.frameBuf)
			if err != nil {
				return err
			}
			*s.frameBuf = buf
			if len(buf) == 0 {
				continue
			}
			if s.f.Header.HeaderVersion >= 4 {
				// Parse the frame-local dictionary and base start; s.buf
				// mirrors the cursor's remaining bytes from here on.
				if err := s.cur.init(s.f.Header.HeaderVersion, buf); err != nil {
					return err
				}
				if len(s.cur.buf) == 0 {
					continue
				}
				s.buf = s.cur.buf
				return nil
			}
			s.buf = buf
			return nil
		}
		if s.dir.Next == 0 {
			return io.EOF
		}
		if err := s.loadDir(s.dir.Next); err != nil {
			return err
		}
		if s.dir == nil {
			return io.EOF
		}
	}
}

// loadDir reads the directory at off into s.dir. On window scans of
// version-2 files, directories whose aggregate bounds miss the window
// are skipped using only their headers; reaching the end of the chain
// this way leaves s.dir nil (EOF).
func (s *Scanner) loadDir(off int64) error {
	v2 := s.f.Header.HeaderVersion >= 2
	for {
		d, n, err := s.f.readDirHeader(off)
		if err != nil {
			return err
		}
		if s.win && v2 && n > 0 && !d.Overlaps(s.winLo, s.winHi) {
			if d.Next == 0 {
				s.dir = nil
				return nil
			}
			off = d.Next
			continue
		}
		if err := s.f.readDirEntries(d, n); err != nil {
			return err
		}
		s.dir = d
		s.frame = 0
		return nil
	}
}

// release returns the pooled frame buffer once the scan has terminated
// (EOF or error; s.err is sticky, so the buffer cannot be touched
// again).
func (s *Scanner) release() {
	if s.frameBuf != nil {
		putBuf(s.frameBuf)
		s.frameBuf = nil
		s.buf = nil
	}
}
