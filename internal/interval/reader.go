package interval

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"tracefw/internal/clock"
)

// FrameEntry describes one frame (paper §2.3.3): "Each entry contains a
// frame pointer indicating the starting offset of the frame, the size of
// the frame, the number of records in the frame, and the start time and
// end time of the frame."
type FrameEntry struct {
	Offset  int64
	Bytes   uint32
	Records uint32
	Start   clock.Time
	End     clock.Time
}

// FrameDir is one frame directory with its position and links.
type FrameDir struct {
	Offset  int64
	Prev    int64 // 0 = none
	Next    int64 // 0 = none
	Entries []FrameEntry
}

// File provides random and sequential access to an interval file.
type File struct {
	Header   Header
	FirstDir int64
	// Size is the total file size, used to bound every offset and length
	// read from the file so corrupted metadata cannot trigger huge
	// allocations.
	Size int64

	r      io.ReadSeeker
	closer io.Closer
}

// ReadHeader parses the header, thread table, and marker table (the
// paper's readHeader), leaving the file positioned at the first frame
// directory.
func ReadHeader(r io.ReadSeeker) (*File, error) {
	size, err := r.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, err
	}
	var fixed [fixedHeaderSize]byte
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, fmt.Errorf("interval: reading header: %w", err)
	}
	if string(fixed[:8]) != fileMagic {
		return nil, fmt.Errorf("interval: bad magic %q", fixed[:8])
	}
	f := &File{r: r, Size: size}
	f.Header.ProfileVersion = binary.LittleEndian.Uint32(fixed[8:])
	f.Header.HeaderVersion = binary.LittleEndian.Uint32(fixed[12:])
	nThreads := binary.LittleEndian.Uint32(fixed[16:])
	f.Header.FieldMask = binary.LittleEndian.Uint16(fixed[20:])
	nMarkers := binary.LittleEndian.Uint32(fixed[24:])

	if int64(nThreads)*threadEntrySize > size {
		return nil, fmt.Errorf("interval: thread table (%d entries) exceeds file size %d", nThreads, size)
	}
	tt := make([]byte, int(nThreads)*threadEntrySize)
	if _, err := io.ReadFull(r, tt); err != nil {
		return nil, fmt.Errorf("interval: reading thread table: %w", err)
	}
	for i := 0; i < int(nThreads); i++ {
		b := tt[i*threadEntrySize:]
		f.Header.Threads = append(f.Header.Threads, ThreadEntry{
			Task:   int32(binary.LittleEndian.Uint32(b[0:])),
			PID:    binary.LittleEndian.Uint64(b[4:]),
			SysTID: binary.LittleEndian.Uint64(b[12:]),
			Node:   binary.LittleEndian.Uint16(b[20:]),
			LTID:   binary.LittleEndian.Uint16(b[22:]),
			Type:   b[24],
		})
	}
	f.Header.Markers = make(map[uint64]string, nMarkers)
	for i := 0; i < int(nMarkers); i++ {
		var mh [10]byte
		if _, err := io.ReadFull(r, mh[:]); err != nil {
			return nil, fmt.Errorf("interval: reading marker table: %w", err)
		}
		id := binary.LittleEndian.Uint64(mh[0:])
		sl := int(binary.LittleEndian.Uint16(mh[8:]))
		s := make([]byte, sl)
		if _, err := io.ReadFull(r, s); err != nil {
			return nil, fmt.Errorf("interval: reading marker string: %w", err)
		}
		f.Header.Markers[id] = string(s)
	}
	pos, err := r.Seek(0, io.SeekCurrent)
	if err != nil {
		return nil, err
	}
	f.FirstDir = pos
	if c, ok := r.(io.Closer); ok {
		f.closer = c
	}
	return f, nil
}

// Open opens an interval file on disk.
func Open(path string) (*File, error) {
	fp, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	f, err := ReadHeader(fp)
	if err != nil {
		fp.Close()
		return nil, err
	}
	return f, nil
}

// Close closes the underlying file if the File owns one.
func (f *File) Close() error {
	if f.closer != nil {
		c := f.closer
		f.closer = nil
		return c.Close()
	}
	return nil
}

// MarkerString retrieves a marker string by identifier (the paper's
// marker-table lookup routine).
func (f *File) MarkerString(id uint64) (string, bool) {
	s, ok := f.Header.Markers[id]
	return s, ok
}

// ReadFrameDir reads the frame directory at offset (the paper's
// readFrameDir when given FirstDir). The paper points out a user need
// not read any directory except the first: the Prev/Next links and the
// Scanner handle the rest.
func (f *File) ReadFrameDir(offset int64) (*FrameDir, error) {
	if _, err := f.r.Seek(offset, io.SeekStart); err != nil {
		return nil, err
	}
	var h [dirHeaderSize]byte
	if _, err := io.ReadFull(f.r, h[:]); err != nil {
		return nil, fmt.Errorf("interval: reading frame directory at %d: %w", offset, err)
	}
	d := &FrameDir{
		Offset: offset,
		Prev:   int64(binary.LittleEndian.Uint64(h[8:])),
		Next:   int64(binary.LittleEndian.Uint64(h[16:])),
	}
	if d.Next < 0 || d.Next > f.Size || d.Prev < 0 || d.Prev > f.Size {
		return nil, fmt.Errorf("interval: directory at %d has out-of-file links (prev %d, next %d)", offset, d.Prev, d.Next)
	}
	n := int(binary.LittleEndian.Uint32(h[0:]))
	if offset+dirHeaderSize+int64(n)*frameEntrySize > f.Size {
		return nil, fmt.Errorf("interval: directory at %d claims %d entries beyond file size", offset, n)
	}
	eb := make([]byte, n*frameEntrySize)
	if _, err := io.ReadFull(f.r, eb); err != nil {
		return nil, fmt.Errorf("interval: reading %d frame entries: %w", n, err)
	}
	for i := 0; i < n; i++ {
		b := eb[i*frameEntrySize:]
		d.Entries = append(d.Entries, FrameEntry{
			Offset:  int64(binary.LittleEndian.Uint64(b[0:])),
			Bytes:   binary.LittleEndian.Uint32(b[8:]),
			Records: binary.LittleEndian.Uint32(b[12:]),
			Start:   clock.Time(binary.LittleEndian.Uint64(b[16:])),
			End:     clock.Time(binary.LittleEndian.Uint64(b[24:])),
		})
	}
	return d, nil
}

// Dirs returns every frame directory in file order. A corrupted link
// that revisits an offset is reported as an error rather than looping.
func (f *File) Dirs() ([]*FrameDir, error) {
	var dirs []*FrameDir
	seen := map[int64]bool{}
	off := f.FirstDir
	for {
		if seen[off] {
			return nil, fmt.Errorf("interval: frame directory cycle at offset %d", off)
		}
		seen[off] = true
		d, err := f.ReadFrameDir(off)
		if err != nil {
			return nil, err
		}
		dirs = append(dirs, d)
		if d.Next == 0 {
			return dirs, nil
		}
		off = d.Next
	}
}

// Frames returns every frame entry in file order.
func (f *File) Frames() ([]FrameEntry, error) {
	dirs, err := f.Dirs()
	if err != nil {
		return nil, err
	}
	var fes []FrameEntry
	for _, d := range dirs {
		fes = append(fes, d.Entries...)
	}
	return fes, nil
}

// ReadFrame loads a frame's raw record bytes.
func (f *File) ReadFrame(fe FrameEntry) ([]byte, error) {
	return f.readFrameInto(fe, nil)
}

// readFrameInto loads a frame's raw record bytes into buf's backing
// array when it is large enough, allocating otherwise. The Scanner uses
// it to reuse one pooled buffer across all frames of a scan.
func (f *File) readFrameInto(fe FrameEntry, buf []byte) ([]byte, error) {
	if fe.Offset < 0 || int64(fe.Bytes) > f.Size || fe.Offset+int64(fe.Bytes) > f.Size {
		return nil, fmt.Errorf("interval: frame at %d (%d bytes) exceeds file size %d", fe.Offset, fe.Bytes, f.Size)
	}
	if _, err := f.r.Seek(fe.Offset, io.SeekStart); err != nil {
		return nil, err
	}
	if cap(buf) < int(fe.Bytes) {
		buf = make([]byte, fe.Bytes)
	} else {
		buf = buf[:fe.Bytes]
	}
	if _, err := io.ReadFull(f.r, buf); err != nil {
		return nil, fmt.Errorf("interval: reading frame at %d: %w", fe.Offset, err)
	}
	return buf, nil
}

// FrameRecords decodes every record of a frame.
func (f *File) FrameRecords(fe FrameEntry) ([]Record, error) {
	buf, err := f.ReadFrame(fe)
	if err != nil {
		return nil, err
	}
	recs := make([]Record, 0, fe.Records)
	for len(buf) > 0 {
		payload, n, err := NextFramed(buf)
		if err != nil {
			return nil, err
		}
		r, err := DecodePayload(payload)
		if err != nil {
			return nil, err
		}
		recs = append(recs, r)
		buf = buf[n:]
	}
	if len(recs) != int(fe.Records) {
		return nil, fmt.Errorf("interval: frame claims %d records, found %d", fe.Records, len(recs))
	}
	return recs, nil
}

// FrameContaining locates the first frame whose time range covers t,
// using only directory metadata — the fast seek the format exists for.
// ok is false when t is after the last frame.
func (f *File) FrameContaining(t clock.Time) (FrameEntry, bool, error) {
	off := f.FirstDir
	for {
		d, err := f.ReadFrameDir(off)
		if err != nil {
			return FrameEntry{}, false, err
		}
		if n := len(d.Entries); n > 0 && d.Entries[n-1].End >= t {
			// Frames are end-time ordered: binary search the first frame
			// with End >= t inside this directory.
			lo, hi := 0, n-1
			for lo < hi {
				mid := (lo + hi) / 2
				if d.Entries[mid].End >= t {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			return d.Entries[lo], true, nil
		}
		if d.Next == 0 {
			return FrameEntry{}, false, nil
		}
		off = d.Next
	}
}

// Stats aggregates frame-directory information: total elapsed time and
// total record count (paper §2.4's aggregate routines).
func (f *File) Stats() (first, last clock.Time, records int64, err error) {
	fes, err := f.Frames()
	if err != nil {
		return 0, 0, 0, err
	}
	if len(fes) == 0 {
		return 0, 0, 0, nil
	}
	first = fes[0].Start
	for _, fe := range fes {
		if fe.Start < first {
			first = fe.Start
		}
		if fe.End > last {
			last = fe.End
		}
		records += int64(fe.Records)
	}
	return first, last, records, nil
}

// Scanner iterates records sequentially across all frames and
// directories, hiding the structure (the paper's getInterval loop).
type Scanner struct {
	f       *File
	dir     *FrameDir
	frame   int
	buf     []byte
	err     error
	started bool
	// frameBuf is the pooled backing buffer the current frame was read
	// into; it is returned to the pool once the scan terminates.
	frameBuf *[]byte
}

// Scan returns a sequential record scanner positioned before the first
// record.
func (f *File) Scan() *Scanner { return &Scanner{f: f} }

// Next returns the next record's payload bytes, or io.EOF after the
// last record. The returned slice is valid until the following call.
func (s *Scanner) Next() ([]byte, error) {
	if s.err != nil {
		return nil, s.err
	}
	for len(s.buf) == 0 {
		if err := s.advanceFrame(); err != nil {
			s.err = err
			s.release()
			return nil, err
		}
	}
	payload, n, err := NextFramed(s.buf)
	if err != nil {
		s.err = err
		s.release()
		return nil, err
	}
	s.buf = s.buf[n:]
	return payload, nil
}

// NextRecord decodes the next record.
func (s *Scanner) NextRecord() (Record, error) {
	payload, err := s.Next()
	if err != nil {
		return Record{}, err
	}
	return DecodePayload(payload)
}

// NextRecordInto decodes the next record into *r, reusing r's Extra and
// Vec capacity. Hot sequential consumers (merge sources, clock-pair
// extraction) use it to avoid one allocation per record.
func (s *Scanner) NextRecordInto(r *Record) error {
	payload, err := s.Next()
	if err != nil {
		return err
	}
	return DecodePayloadInto(payload, r)
}

// All drains the scanner. The result slice is sized up front from the
// frame directories' record counts when the scan starts at the
// beginning of the file.
func (s *Scanner) All() ([]Record, error) {
	var recs []Record
	if !s.started && s.err == nil {
		if fes, err := s.f.Frames(); err == nil {
			var total int64
			for _, fe := range fes {
				total += int64(fe.Records)
			}
			recs = make([]Record, 0, total)
		}
	}
	for {
		r, err := s.NextRecord()
		if errors.Is(err, io.EOF) {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, r)
	}
}

func (s *Scanner) advanceFrame() error {
	for {
		if s.dir == nil {
			if s.started {
				return io.EOF
			}
			s.started = true
			d, err := s.f.ReadFrameDir(s.f.FirstDir)
			if err != nil {
				return err
			}
			s.dir = d
			s.frame = 0
		}
		if s.frame < len(s.dir.Entries) {
			fe := s.dir.Entries[s.frame]
			s.frame++
			if s.frameBuf == nil {
				s.frameBuf = getBuf()
			}
			buf, err := s.f.readFrameInto(fe, *s.frameBuf)
			if err != nil {
				return err
			}
			*s.frameBuf = buf
			if len(buf) == 0 {
				continue
			}
			s.buf = buf
			return nil
		}
		if s.dir.Next == 0 {
			return io.EOF
		}
		d, err := s.f.ReadFrameDir(s.dir.Next)
		if err != nil {
			return err
		}
		s.dir = d
		s.frame = 0
	}
}

// release returns the pooled frame buffer once the scan has terminated
// (EOF or error; s.err is sticky, so the buffer cannot be touched
// again).
func (s *Scanner) release() {
	if s.frameBuf != nil {
		putBuf(s.frameBuf)
		s.frameBuf = nil
		s.buf = nil
	}
}
