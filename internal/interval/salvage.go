package interval

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"tracefw/internal/clock"
)

// ByteRange is a half-open byte range [Off, Off+Len) of the damaged
// file that salvage could not recover.
type ByteRange struct {
	Off, Len int64
}

// SalvageReport summarizes a best-effort recovery pass.
type SalvageReport struct {
	HeaderVersion uint32
	// DirsGood counts directories reached intact through the link
	// chain; DirsResynced counts directories recovered by scanning the
	// file after a broken link; DirsDropped counts positions where a
	// directory should have been but none could be read.
	DirsGood     int
	DirsResynced int
	DirsDropped  int
	// FramesRecovered/FramesDropped count directory entries whose
	// frames passed/failed the salvage checks; RecordsRecovered sums
	// the recovered frames' record counts.
	FramesRecovered  int
	FramesDropped    int
	RecordsRecovered int64
	// LostRanges lists the byte ranges salvage had to give up on
	// (merged and sorted); BytesLost is their total size.
	LostRanges []ByteRange
	BytesLost  int64
	// FirstGood/LastGood bound the recovered frames' time range; both
	// are zero when nothing was recovered.
	FirstGood, LastGood clock.Time
	// Truncated reports that the file ended before its directory chain
	// did (the signature of a killed writer or a cut-short copy).
	Truncated bool
}

// Clean reports whether salvage recovered the file without losing
// anything.
func (r *SalvageReport) Clean() bool {
	return r.DirsResynced == 0 && r.DirsDropped == 0 && r.FramesDropped == 0 &&
		len(r.LostRanges) == 0 && !r.Truncated
}

// SalvageResult carries the recovered frames (in file order, which for
// an undamaged region is end-time order) and the report.
type SalvageResult struct {
	Frames []FrameEntry
	Report SalvageReport
}

// Salvage walks the frame directories tolerantly and returns every
// frame that provably survived: its directory entry passes all bounds
// checks, its payload decodes completely, and the decoded records agree
// with the entry's record count and time bounds (plus, on version-3
// files, the stored CRC-32C checksums). When a directory link is broken
// Salvage re-synchronizes by scanning forward for the next plausible
// directory header — on version-3 files by its magic word, on older
// versions by structural plausibility. It never returns an error and
// never panics, and it never emits a frame whose bytes it could not
// fully verify, so no record absent from the undamaged file can appear
// in the result.
func (f *File) Salvage() (res *SalvageResult) {
	res = &SalvageResult{}
	rep := &res.Report
	rep.HeaderVersion = f.Header.HeaderVersion

	seenFrame := make(map[int64]bool)
	seenDir := make(map[int64]bool)
	// Coverage tracking drives both re-synchronization and loss
	// reporting. strictCov holds bytes accounted for by evidence that
	// cannot be faked by a misparse: payload-verified frames, directory
	// metadata that is either checksummed (v3) or had every single entry
	// verify, the empty directory an empty file legitimately starts
	// with, and regions a resync sweep already examined. Every resync
	// starts at the earliest gap in strictCov — never at a (possibly
	// far-forward) corrupt link target — so intact directories are never
	// skipped no matter how scattered the verified evidence is. looseCov
	// additionally counts the metadata of every accepted directory and
	// exists only for the report: its complement is what was lost.
	var strictCov, looseCov []ByteRange
	cover := func(cov *[]ByteRange, off, end int64) {
		if end > off {
			*cov = append(*cov, ByteRange{Off: off, Len: end - off})
		}
	}

	// Salvage is a last line of defense: a defect in it must degrade to
	// "nothing more recovered", never take down the caller.
	defer func() {
		if r := recover(); r != nil {
			rep.Truncated = true
			res.finish(f, looseCov)
		}
	}()

	// gap returns the earliest byte of the body not in strictCov, or -1
	// when the whole body is accounted for.
	gap := func() int64 {
		strictCov = mergeRanges(strictCov)
		at := f.FirstDir
		for _, r := range strictCov {
			if r.Off > at {
				break
			}
			if e := r.Off + r.Len; e > at {
				at = e
			}
		}
		if at >= f.Size {
			return -1
		}
		return at
	}
	// resync recovers from a broken chain: it sweeps the earliest
	// unaccounted bytes for the next plausible directory and reports
	// whether the walk can continue. Swept regions join strictCov and
	// already-visited directories are skipped, so repeated resyncs
	// always make forward progress.
	resync := func() (int64, bool) {
		g := gap()
		if g < 0 {
			return 0, false
		}
		cand := f.resyncDir(g, seenDir)
		if cand < 0 {
			cover(&strictCov, g, f.Size)
			return 0, false
		}
		cover(&strictCov, g, cand)
		return cand, true
	}

	pos := f.FirstDir
	viaLink := true
	for {
		bad := pos < f.FirstDir || pos >= f.Size || seenDir[pos]
		var d *rawDir
		if !bad {
			var ok bool
			d, ok = f.salvageDir(pos)
			bad = !ok
		}
		if bad {
			// The chain points at something that is not a directory (out
			// of bounds, already visited, or unparseable): sweep the
			// earliest unaccounted bytes instead.
			rep.DirsDropped++
			next, ok := resync()
			if !ok {
				rep.Truncated = true
				break
			}
			pos = next
			viaLink = false
			continue
		}
		seenDir[pos] = true
		if viaLink && d.hdrOK {
			rep.DirsGood++
		} else {
			rep.DirsResynced++
		}
		allVerified := len(d.entries) == d.n
		for _, fe := range d.entries {
			// Dedup on recovery, not on sight: a misparsed entry that
			// happens to carry a real frame's offset but fails
			// verification must not block the genuine entry later.
			if seenFrame[fe.Offset] {
				continue
			}
			if f.salvageFrame(fe) {
				seenFrame[fe.Offset] = true
				res.Frames = append(res.Frames, fe)
				rep.FramesRecovered++
				rep.RecordsRecovered += int64(fe.Records)
				cover(&strictCov, fe.Offset, fe.Offset+int64(fe.Bytes))
				cover(&looseCov, fe.Offset, fe.Offset+int64(fe.Bytes))
			} else {
				rep.FramesDropped++
				allVerified = false
			}
		}
		rep.FramesDropped += d.entriesDropped
		cover(&looseCov, d.off, d.tableEnd)
		if (f.Header.HeaderVersion >= 3 && d.hdrOK) ||
			(d.n == 0 && d.off == f.FirstDir) ||
			(d.n > 0 && allVerified) {
			cover(&strictCov, d.off, d.tableEnd)
		}
		if d.next == 0 {
			// A terminal directory accounts for the rest of the file.
			// Unaccounted bytes mean the chain was cut or overwritten —
			// sweep them for surviving directories instead of trusting
			// the zero link.
			next, ok := resync()
			if !ok {
				break // everything accounted, or the sweep came up empty
			}
			rep.DirsDropped++
			pos = next
			viaLink = false
			continue
		}
		if d.next <= pos {
			// Backward or self link: corrupt. Sweep forward past this
			// directory rather than looping.
			rep.DirsDropped++
			next, ok := resync()
			if !ok {
				rep.Truncated = true
				break
			}
			pos = next
			viaLink = false
			continue
		}
		pos = d.next
		viaLink = true
	}
	res.finish(f, looseCov)
	return res
}

// finish derives the aggregate report fields from the recovered frames
// and the coverage: everything in the body not covered by a recovered
// frame or accepted directory metadata was lost.
func (res *SalvageResult) finish(f *File, cov []ByteRange) {
	rep := &res.Report
	for i, fe := range res.Frames {
		if i == 0 || fe.Start < rep.FirstGood {
			rep.FirstGood = fe.Start
		}
		if i == 0 || fe.End > rep.LastGood {
			rep.LastGood = fe.End
		}
	}
	cov = mergeRanges(cov)
	var lost []ByteRange
	at := f.FirstDir
	for _, r := range cov {
		if r.Off > at {
			lost = append(lost, ByteRange{Off: at, Len: r.Off - at})
		}
		if e := r.Off + r.Len; e > at {
			at = e
		}
	}
	if at < f.Size {
		lost = append(lost, ByteRange{Off: at, Len: f.Size - at})
	}
	rep.LostRanges = lost
	rep.BytesLost = 0
	for _, r := range lost {
		rep.BytesLost += r.Len
	}
}

// mergeRanges sorts ranges by offset and coalesces overlaps in place.
func mergeRanges(rs []ByteRange) []ByteRange {
	if len(rs) < 2 {
		return rs
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Off < rs[j].Off })
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Off <= last.Off+last.Len {
			if e := r.Off + r.Len; e > last.Off+last.Len {
				last.Len = e - last.Off
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}

// rawDir is a tolerantly-read directory: header fields plus the entries
// that individually passed the bounds checks.
type rawDir struct {
	off        int64
	n          int
	prev, next int64
	hdrOK      bool // v3 metadata checksum verified (vacuously true on v1/v2)
	entries    []FrameEntry
	// entriesDropped counts entries rejected by the per-entry bounds
	// checks before any frame bytes were read.
	entriesDropped int
	// tableEnd is the offset just past the entry table.
	tableEnd int64
}

// salvageDir reads the directory at off with only the checks needed to
// trust its shape, not its content: header bounds and, on version 3,
// the directory magic. Link fields are parsed but deliberately not
// validated — a broken link is the walk's problem, never a reason to
// drop this directory's frames. An entry table cut short by truncation
// or claiming more entries than fit is clamped to its readable prefix;
// entries failing their own bounds checks (or sitting in unreadable
// sectors) are dropped individually; a failed v3 metadata checksum
// demotes the directory to hdrOK=false but still yields its plausible
// entries (each frame is verified against its own payload before being
// accepted).
func (f *File) salvageDir(off int64) (*rawDir, bool) {
	ver := f.Header.HeaderVersion
	hdrSize := int64(dirHeaderSize(ver))
	esz := int64(entrySize(ver))
	if off < 0 || off+hdrSize > f.Size {
		return nil, false
	}
	var hb [dirHeaderV3Size]byte
	h := hb[:hdrSize]
	if !f.readRaw(off, h) {
		return nil, false
	}
	if ver >= 3 && binary.LittleEndian.Uint32(h[4:]) != dirMagic {
		return nil, false
	}
	d := &rawDir{
		off:  off,
		n:    int(binary.LittleEndian.Uint32(h[0:])),
		prev: int64(binary.LittleEndian.Uint64(h[8:])),
		next: int64(binary.LittleEndian.Uint64(h[16:])),
	}
	if d.n < 0 {
		return nil, false
	}
	nRead := d.n
	partial := false
	if maxN := (f.Size - off - hdrSize) / esz; int64(nRead) > maxN {
		// The claimed table runs past EOF (truncation, or a corrupt
		// count): salvage its readable prefix.
		nRead = int(maxN)
		partial = true
	}
	d.tableEnd = off + hdrSize + int64(nRead)*esz
	d.hdrOK = !partial
	// A corrupt count can claim billions of entries; report at most as
	// many dropped frames as the file could physically hold.
	d.entriesDropped = d.n - nRead
	if most := int(f.Size / minRecordBytes(ver)); d.entriesDropped > most {
		d.entriesDropped = most
	}
	if nRead == 0 {
		return d, true
	}
	eb := make([]byte, int64(nRead)*esz)
	ebOK := f.readRaw(off+hdrSize, eb)
	var entryOK []bool
	if !ebOK {
		// A bad sector somewhere in the table: fall back to per-entry
		// reads so entries clear of the damage still salvage.
		entryOK = make([]bool, nRead)
		for i := range entryOK {
			entryOK[i] = f.readRaw(off+hdrSize+int64(i)*esz, eb[int64(i)*esz:int64(i+1)*esz])
		}
	}
	if ver >= 3 {
		if !ebOK || partial {
			d.hdrOK = false
		} else {
			start := clock.Time(binary.LittleEndian.Uint64(h[24:]))
			end := clock.Time(binary.LittleEndian.Uint64(h[32:]))
			records := binary.LittleEndian.Uint64(h[40:])
			sum := binary.LittleEndian.Uint32(h[48:])
			d.hdrOK = dirChecksum(uint32(d.n), start, end, records, eb) == sum
		}
	}
	// Frames always sit past their own directory's header; the exact
	// table end is not trusted here because the entry count itself may
	// be corrupt — per-frame payload verification carries the burden.
	frameFloor := off + hdrSize
	for i := 0; i < nRead; i++ {
		if entryOK != nil && !entryOK[i] {
			d.entriesDropped++
			continue
		}
		b := eb[int64(i)*esz:]
		fe := FrameEntry{
			Offset:  int64(binary.LittleEndian.Uint64(b[0:])),
			Bytes:   binary.LittleEndian.Uint32(b[8:]),
			Records: binary.LittleEndian.Uint32(b[12:]),
			Start:   clock.Time(binary.LittleEndian.Uint64(b[16:])),
			End:     clock.Time(binary.LittleEndian.Uint64(b[24:])),
		}
		if ver >= 3 {
			fe.Sum = binary.LittleEndian.Uint32(b[32:])
		}
		// A frame sits inside the file after its directory header, holds
		// at least one record, and cannot claim more records than fit in
		// its bytes.
		if fe.Offset < frameFloor || int64(fe.Bytes) > f.Size-fe.Offset ||
			fe.Records < 1 || int64(fe.Records)*minRecordBytes(ver) > int64(fe.Bytes) ||
			fe.Start > fe.End {
			d.entriesDropped++
			continue
		}
		d.entries = append(d.entries, fe)
	}
	return d, true
}

// salvageFrame verifies a frame's bytes against its directory entry:
// the payload checksum on version 3 and above, then a full decode
// cross-checked against the entry's record count and time bounds, with
// record end times nondecreasing inside the frame. On v4 frames the
// decode is the compact varint stream (dictionary, base start, then
// records): the frame is recovered only if that stream decodes exactly
// to the entry's record count with no trailing bytes. Only frames
// passing every check are recovered, which is what keeps salvage from
// ever inventing a record.
func (f *File) salvageFrame(fe FrameEntry) bool {
	buf := make([]byte, fe.Bytes)
	if !f.readRaw(fe.Offset, buf) {
		return false
	}
	if f.Header.HeaderVersion >= 3 && crc32.Checksum(buf, crcTable) != fe.Sum {
		return false
	}
	var cur frameCursor
	if cur.init(f.Header.HeaderVersion, buf) != nil {
		return false
	}
	var (
		n        uint32
		lo, hi   clock.Time
		prevEnd  clock.Time
		anyYet   bool
		scratchR Record
	)
	for len(cur.buf) > 0 {
		if cur.next(&scratchR, nil) != nil {
			return false
		}
		end := scratchR.End()
		if anyYet && end < prevEnd {
			return false
		}
		prevEnd = end
		if !anyYet || scratchR.Start < lo {
			lo = scratchR.Start
		}
		if !anyYet || end > hi {
			hi = end
		}
		anyYet = true
		n++
	}
	return n == fe.Records && lo == fe.Start && hi == fe.End
}

// resyncDir scans forward from off for the next plausible directory
// header, returning its offset or -1. Version 3 looks for the
// directory magic; older versions fall back on layout invariants (a
// sane entry count whose first entry points exactly past the entry
// table, backward prev and forward next links). The scan reads the
// file in chunks so a multi-gigabyte recovery does not buffer the
// whole tail.
func (f *File) resyncDir(off int64, skip map[int64]bool) int64 {
	ver := f.Header.HeaderVersion
	hdrSize := int64(dirHeaderSize(ver))
	const chunk = 1 << 20
	buf := make([]byte, 0, chunk+dirHeaderV3Size)
	for base := off; base+hdrSize <= f.Size; {
		want := int64(chunk) + hdrSize
		if base+want > f.Size {
			want = f.Size - base
		}
		buf = buf[:want]
		f.readRawSparse(base, buf)
		for i := int64(0); i+hdrSize <= int64(len(buf)); i++ {
			cand := base + i
			if skip[cand] {
				continue
			}
			if ver >= 3 {
				if binary.LittleEndian.Uint32(buf[i+4:]) != dirMagic {
					continue
				}
			} else if !f.plausibleDirHeader(cand, buf[i:i+hdrSize]) {
				continue
			}
			if _, ok := f.salvageDir(cand); ok {
				return cand
			}
		}
		base += int64(chunk)
	}
	return -1
}

// plausibleDirHeader applies the v1/v2 structural heuristics to a
// candidate directory header at cand: non-zero sane entry count, prev
// strictly behind, next zero or strictly ahead, and (v2) in-bounds
// aggregates. The caller re-validates the winner with salvageDir, which
// additionally requires the first entry to point exactly past the entry
// table — the layout every writer of this format produces.
func (f *File) plausibleDirHeader(cand int64, h []byte) bool {
	ver := f.Header.HeaderVersion
	hdrSize := int64(dirHeaderSize(ver))
	esz := int64(entrySize(ver))
	n := int64(binary.LittleEndian.Uint32(h[0:]))
	if n < 1 || cand+hdrSize+n*esz+n*minFramedRecord > f.Size {
		return false
	}
	prev := int64(binary.LittleEndian.Uint64(h[8:]))
	next := int64(binary.LittleEndian.Uint64(h[16:]))
	if prev < 0 || prev >= cand {
		return false
	}
	if next != 0 && (next <= cand || next > f.Size) {
		return false
	}
	if ver >= 2 {
		start := int64(binary.LittleEndian.Uint64(h[24:]))
		end := int64(binary.LittleEndian.Uint64(h[32:]))
		records := int64(binary.LittleEndian.Uint64(h[40:]))
		if start > end || records < n || records*minFramedRecord > f.Size {
			return false
		}
	}
	// The entry table must be followed immediately by its first frame.
	var e0 [8]byte
	if !f.readRaw(cand+hdrSize, e0[:]) {
		return false
	}
	return int64(binary.LittleEndian.Uint64(e0[:])) == cand+hdrSize+n*esz
}

// readRaw reads len(p) bytes at off through the file's reader,
// reporting success instead of an error — salvage treats any read
// failure (truncation, bad sector) as damage.
func (f *File) readRaw(off int64, p []byte) bool {
	if off < 0 || off+int64(len(p)) > f.Size {
		return false
	}
	if f.ra != nil {
		_, err := f.ra.ReadAt(p, off)
		return err == nil
	}
	if _, err := f.r.Seek(off, io.SeekStart); err != nil {
		return false
	}
	_, err := io.ReadFull(f.r, p)
	return err == nil
}

// readRawSparse fills p from off, bisecting around media errors and
// zeroing only the bytes that genuinely cannot be read. Zeroed bytes
// can never look like a directory header (no magic on v3, a zero entry
// count on v1/v2), so the resync scan stays byte-precise around bad
// sectors; any candidate it does surface is re-read and re-validated by
// salvageDir.
func (f *File) readRawSparse(off int64, p []byte) {
	if len(p) == 0 || f.readRaw(off, p) {
		return
	}
	if len(p) == 1 {
		p[0] = 0
		return
	}
	mid := len(p) / 2
	f.readRawSparse(off, p[:mid])
	f.readRawSparse(off+int64(mid), p[mid:])
}

// RepairReport summarizes a Repair pass.
type RepairReport struct {
	FramesWritten  int
	FramesSkipped  int // salvaged frames dropped to preserve end-time order
	RecordsWritten int64
}

// Repair writes the salvaged frames to dst as a fresh, fully valid
// interval file with the same header (and header version) as the
// source. Record content is copied exactly — verbatim payload bytes
// below version 4, decode-and-re-encode through the compact codec on
// v4 — while directory metadata and checksums are rebuilt by the
// writer. Frames that would break the format's global end-time
// ordering (possible only when salvage had to resync around damage)
// are skipped and counted.
func Repair(f *File, sv *SalvageResult, dst io.WriteSeeker, opts WriterOptions) (*RepairReport, error) {
	w, err := NewWriter(dst, f.Header, opts)
	if err != nil {
		return nil, err
	}
	rep := &RepairReport{}
	ver := f.Header.HeaderVersion
	var lastEnd clock.Time
	var wroteAny bool
	var cur frameCursor
	var scratch Record
	var pbuf []byte
	for _, fe := range sv.Frames {
		buf, err := f.ReadFrame(fe)
		if err != nil {
			// The file degraded between salvage and repair (or a bad
			// sector fired only now): treat like a skipped frame.
			rep.FramesSkipped++
			continue
		}
		// Salvage verified intra-frame ordering; the frame's first
		// record carries its minimum end time. Decode it before writing
		// anything so a degraded frame is skipped whole.
		if cur.init(ver, buf) != nil || len(cur.buf) == 0 {
			rep.FramesSkipped++
			continue
		}
		if err := cur.next(&scratch, nil); err != nil {
			rep.FramesSkipped++
			continue
		}
		if wroteAny && scratch.End() < lastEnd {
			rep.FramesSkipped++
			continue
		}
		for {
			payload := cur.payload
			if payload == nil {
				pbuf = scratch.AppendPayload(pbuf[:0])
				payload = pbuf
			}
			end := scratch.End()
			if err := w.AddPayload(payload, scratch.Start, end); err != nil {
				return nil, err
			}
			lastEnd = end
			wroteAny = true
			rep.RecordsWritten++
			if len(cur.buf) == 0 {
				break
			}
			if err := cur.next(&scratch, nil); err != nil {
				return nil, fmt.Errorf("interval: repair: frame at %d no longer decodes: %w", fe.Offset, err)
			}
		}
		rep.FramesWritten++
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return rep, nil
}
