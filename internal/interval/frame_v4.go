package interval

// Header version 4 compact frame encoding. The directory layout is
// unchanged from version 3 (same magic, metadata checksum, and
// per-frame payload CRC over the encoded bytes); only the bytes inside
// each frame differ. Instead of fixed-width records, a v4 frame holds:
//
//	dictCount   uvarint
//	dictionary  dictCount × (type, bebits, cpu, node, thread, nExtras), all uvarint
//	baseStart   varint (zigzag) — the minimum start time in the frame
//	records     × (dictIdx uvarint, startDelta uvarint, duration varint,
//	               nExtras × extra uvarint,
//	               [vecCount uvarint + vecCount × elem uvarint])
//
// The dictionary deduplicates the (type, bebits, cpu, node, thread)
// tuples that repeat across a frame's records; nExtras lives in the
// dictionary because the fixed-width encoding derives the scalar extras
// count from the payload length, so it must be stated explicitly once
// lengths are variable. The vector field (present exactly when
// events.VectorField(type) is non-empty) keeps a per-record element
// count. startDelta is relative to baseStart, which is the frame
// *minimum* — records are end-time ordered, so the first record's start
// need not be the smallest. Keeping the base frame-local means window
// seeks, the parallel map-reduce engine, and salvage resync never need
// context outside one frame.

import (
	"encoding/binary"
	"errors"
	"fmt"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/profile"
)

// dictEntry is one row of a v4 frame dictionary, and doubles as the
// writer's deduplication key (it is comparable).
type dictEntry struct {
	typ    events.Type
	bebits profile.Bebits
	cpu    uint16
	node   uint16
	thread uint16
	nx     int // scalar extras count
}

const (
	// minV4Record bounds the smallest encoded v4 record: dictionary
	// index, start delta, and duration at one varint byte each.
	minV4Record = 3
	// minV4DictEntry: six varint fields at one byte each.
	minV4DictEntry = 6
	// maxPayload is the largest v1-style payload AppendFramed can frame.
	// v4 decoding enforces it so every decoded record can be re-encoded
	// fixed-width (Scanner.Next, Repair).
	maxPayload = 0xffff
)

// minRecordBytes is the smallest possible encoded record for a header
// version, used to validate record counts against frame and file sizes.
func minRecordBytes(version uint32) int64 {
	if version >= 4 {
		return minV4Record
	}
	return minFramedRecord
}

// v4EncState is the writer's per-frame transcode scratch, reused across
// frames so steady-state encoding allocates nothing.
type v4EncState struct {
	dict []dictEntry
	keys map[dictEntry]uint32
	idx  []uint32 // per-record dictionary index, filled by pass 1
	rec  Record
}

// encodeFrameV4 transcodes a frame of length-prefixed fixed-width
// records (the writer's accumulation format) into the v4 compact
// encoding, appending to dst. Two passes over the frame: the first
// builds the dictionary and finds the base start, the second emits.
func encodeFrameV4(dst, framed []byte, st *v4EncState) ([]byte, error) {
	if len(framed) == 0 {
		return dst, nil
	}
	if st.keys == nil {
		st.keys = make(map[dictEntry]uint32)
	}
	st.dict = st.dict[:0]
	st.idx = st.idx[:0]
	clear(st.keys)
	var base clock.Time
	b := framed
	for first := true; len(b) > 0; first = false {
		payload, n, err := NextFramed(b)
		if err != nil {
			return dst, err
		}
		if err := DecodePayloadInto(payload, &st.rec); err != nil {
			return dst, err
		}
		key := dictEntry{st.rec.Type, st.rec.Bebits, st.rec.CPU, st.rec.Node, st.rec.Thread, len(st.rec.Extra)}
		di, ok := st.keys[key]
		if !ok {
			di = uint32(len(st.dict))
			st.dict = append(st.dict, key)
			st.keys[key] = di
		}
		st.idx = append(st.idx, di)
		if first || st.rec.Start < base {
			base = st.rec.Start
		}
		b = b[n:]
	}
	dst = binary.AppendUvarint(dst, uint64(len(st.dict)))
	for _, d := range st.dict {
		dst = binary.AppendUvarint(dst, uint64(d.typ))
		dst = binary.AppendUvarint(dst, uint64(d.bebits))
		dst = binary.AppendUvarint(dst, uint64(d.cpu))
		dst = binary.AppendUvarint(dst, uint64(d.node))
		dst = binary.AppendUvarint(dst, uint64(d.thread))
		dst = binary.AppendUvarint(dst, uint64(d.nx))
	}
	dst = binary.AppendVarint(dst, int64(base))
	b = framed
	for ri := 0; len(b) > 0; ri++ {
		payload, n, _ := NextFramed(b)
		_ = DecodePayloadInto(payload, &st.rec) // validated by pass 1
		dst = binary.AppendUvarint(dst, uint64(st.idx[ri]))
		dst = binary.AppendUvarint(dst, uint64(st.rec.Start-base))
		dst = binary.AppendVarint(dst, int64(st.rec.Dura))
		for _, e := range st.rec.Extra {
			dst = binary.AppendUvarint(dst, e)
		}
		if events.VectorField(st.rec.Type) != "" {
			dst = binary.AppendUvarint(dst, uint64(len(st.rec.Vec)))
			for _, e := range st.rec.Vec {
				dst = binary.AppendUvarint(dst, e)
			}
		}
		b = b[n:]
	}
	return dst, nil
}

// frameCursor iterates one frame's records for any header version:
// length-prefixed fixed-width records below version 4, the compact
// varint stream from version 4 on. init parses the v4 frame header
// (dictionary and base start); next decodes one record. The cursor is
// reusable across frames — the dictionary scratch keeps its capacity.
//
// Every count read from the stream is bounded against the bytes that
// remain before anything is allocated, so a corrupt or adversarial
// frame fails with an error instead of a huge allocation.
type frameCursor struct {
	version uint32
	buf     []byte // remaining undecoded frame bytes
	dict    []dictEntry
	base    clock.Time
	// payload is the raw fixed-width payload of the record last returned
	// by next on versions < 4; nil on v4 frames (synthesize bytes with
	// Record.AppendPayload when needed).
	payload []byte
}

// errVarint reports a varint that runs past the frame or past 64 bits.
var errVarint = errors.New("interval: truncated or oversized varint")

// uvarint reads one varint from the stream. The single-byte case is
// split out so it inlines into the decode loop — in practice most v4
// stream values (dictionary indices, small deltas, extras) are one byte.
func (c *frameCursor) uvarint() (uint64, error) {
	if len(c.buf) != 0 && c.buf[0] < 0x80 {
		v := uint64(c.buf[0])
		c.buf = c.buf[1:]
		return v, nil
	}
	return c.uvarintSlow()
}

func (c *frameCursor) uvarintSlow() (uint64, error) {
	v, n := binary.Uvarint(c.buf)
	if n <= 0 {
		return 0, errVarint
	}
	c.buf = c.buf[n:]
	return v, nil
}

// varint is uvarint plus zigzag decoding, with the same fast path.
func (c *frameCursor) varint() (int64, error) {
	if len(c.buf) != 0 && c.buf[0] < 0x80 {
		u := uint64(c.buf[0])
		c.buf = c.buf[1:]
		return int64(u>>1) ^ -int64(u&1), nil
	}
	return c.varintSlow()
}

func (c *frameCursor) varintSlow() (int64, error) {
	v, n := binary.Varint(c.buf)
	if n <= 0 {
		return 0, errVarint
	}
	c.buf = c.buf[n:]
	return v, nil
}

// init points the cursor at a frame's bytes. For v4 it parses and
// validates the dictionary and base start; an empty buffer is an empty
// frame on every version.
func (c *frameCursor) init(version uint32, buf []byte) error {
	c.version = version
	c.buf = buf
	c.payload = nil
	if version < 4 || len(buf) == 0 {
		return nil
	}
	c.dict = c.dict[:0]
	nd, err := c.uvarint()
	if err != nil {
		return err
	}
	if nd == 0 || nd > uint64(len(c.buf)/minV4DictEntry) {
		return fmt.Errorf("interval: v4 frame dictionary of %d entries cannot fit in %d bytes", nd, len(c.buf))
	}
	for i := 0; i < int(nd); i++ {
		t, err := c.uvarint()
		if err != nil {
			return err
		}
		be, err := c.uvarint()
		if err != nil {
			return err
		}
		cpu, err := c.uvarint()
		if err != nil {
			return err
		}
		node, err := c.uvarint()
		if err != nil {
			return err
		}
		thr, err := c.uvarint()
		if err != nil {
			return err
		}
		nx, err := c.uvarint()
		if err != nil {
			return err
		}
		if t > 0xffff || be > 0xff || cpu > 0xffff || node > 0xffff || thr > 0xffff {
			return fmt.Errorf("interval: v4 dictionary entry %d field out of range", i)
		}
		// Every extra costs at least one stream byte, and the record must
		// stay re-encodable as a fixed-width payload.
		if nx > uint64(len(c.buf)) || profile.CommonSize+8*nx > maxPayload {
			return fmt.Errorf("interval: v4 dictionary entry %d claims %d extras", i, nx)
		}
		c.dict = append(c.dict, dictEntry{
			typ:    events.Type(t),
			bebits: profile.Bebits(be),
			cpu:    uint16(cpu),
			node:   uint16(node),
			thread: uint16(thr),
			nx:     int(nx),
		})
	}
	base, err := c.varint()
	if err != nil {
		return err
	}
	c.base = clock.Time(base)
	if len(c.buf) == 0 {
		return fmt.Errorf("interval: v4 frame has a dictionary but no records")
	}
	return nil
}

// next decodes the record at the cursor into *r. With a nil arena,
// r's Extra/Vec capacity is reused (the NextRecordInto contract); with
// an arena, Extra and Vec are fresh capacity-clamped blocks from it, so
// the decoded record can outlive r and later decodes.
func (c *frameCursor) next(r *Record, a *u64Arena) error {
	if c.version < 4 {
		payload, n, err := NextFramed(c.buf)
		if err != nil {
			return err
		}
		c.buf = c.buf[n:]
		c.payload = payload
		return decodePayload(payload, r, a)
	}
	// The loop below hand-inlines the one-byte varint fast path against a
	// local slice: at ~9 stream values per record this is the scan hot
	// path, and the method calls plus per-call c.buf header writes are
	// measurable against the fixed-width decoder.
	b := c.buf
	var v uint64
	var n int
	if len(b) != 0 && b[0] < 0x80 {
		v, b = uint64(b[0]), b[1:]
	} else if v, n = binary.Uvarint(b); n > 0 {
		b = b[n:]
	} else {
		return errVarint
	}
	if v >= uint64(len(c.dict)) {
		return fmt.Errorf("interval: v4 record dictionary index %d out of range (%d entries)", v, len(c.dict))
	}
	d := c.dict[v]
	r.Type, r.Bebits, r.CPU, r.Node, r.Thread = d.typ, d.bebits, d.cpu, d.node, d.thread
	if len(b) != 0 && b[0] < 0x80 {
		v, b = uint64(b[0]), b[1:]
	} else if v, n = binary.Uvarint(b); n > 0 {
		b = b[n:]
	} else {
		return errVarint
	}
	r.Start = c.base + clock.Time(v)
	if len(b) != 0 && b[0] < 0x80 {
		v, b = uint64(b[0]), b[1:]
	} else if v, n = binary.Uvarint(b); n > 0 {
		b = b[n:]
	} else {
		return errVarint
	}
	r.Dura = clock.Time(int64(v>>1) ^ -int64(v&1))
	if d.nx == 0 {
		r.Extra = nil
	} else {
		if a != nil {
			r.Extra = a.alloc(d.nx)
		} else {
			r.Extra = growU64(r.Extra, d.nx)
		}
		for i := range r.Extra {
			if len(b) != 0 && b[0] < 0x80 {
				v, b = uint64(b[0]), b[1:]
			} else if v, n = binary.Uvarint(b); n > 0 {
				b = b[n:]
			} else {
				return errVarint
			}
			r.Extra[i] = v
		}
	}
	c.buf = b
	if events.VectorField(d.typ) == "" {
		r.Vec = nil
		return nil
	}
	nv, err := c.uvarint()
	if err != nil {
		return err
	}
	if nv > uint64(len(c.buf)) || profile.CommonSize+8*uint64(d.nx)+2+8*nv > maxPayload {
		return fmt.Errorf("interval: v4 record claims a %d-element vector", nv)
	}
	if nv == 0 {
		r.Vec = nil
		return nil
	}
	if a != nil {
		r.Vec = a.alloc(int(nv))
	} else {
		r.Vec = growU64(r.Vec, int(nv))
	}
	for i := range r.Vec {
		if r.Vec[i], err = c.uvarint(); err != nil {
			return err
		}
	}
	return nil
}

// u64Arena hands out capacity-clamped []uint64 blocks carved from
// append-only chunks. Blocks from one arena share chunk backing arrays
// but can never grow into each other (three-index slices), and chunks
// are never recycled, so a block stays valid for the life of the
// records holding it. Decode loops use one to amortize the per-record
// Extra/Vec allocation into one allocation per ~4096 elements.
type u64Arena struct {
	chunk []uint64
}

const arenaChunkLen = 4096

func (a *u64Arena) alloc(n int) []uint64 {
	if n == 0 {
		return nil
	}
	if len(a.chunk)+n > cap(a.chunk) {
		c := arenaChunkLen
		if n > c {
			c = n
		}
		a.chunk = make([]uint64, 0, c)
	}
	off := len(a.chunk)
	a.chunk = a.chunk[:off+n]
	return a.chunk[off : off+n : off+n]
}
