package interval

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// sealSnap is one OnSeal notification plus a copy of the file bytes at
// that moment — exactly what a reader racing the writer could observe.
type sealSnap struct {
	info  SealInfo
	bytes []byte
}

// writeWithSeals writes n records through small frames/directories and
// captures a byte snapshot at every seal.
func writeWithSeals(t *testing.T, n int, opts WriterOptions) ([]sealSnap, []Record, *SeekBuffer) {
	t.Helper()
	sb := NewSeekBuffer()
	var snaps []sealSnap
	opts.OnSeal = func(si SealInfo) {
		snaps = append(snaps, sealSnap{info: si, bytes: append([]byte(nil), sb.Bytes()...)})
	}
	w, err := NewWriter(sb, testHeader(), opts)
	if err != nil {
		t.Fatal(err)
	}
	var all []Record
	for i := 0; i < n; i++ {
		r := mkRecord(i)
		all = append(all, r)
		if err := w.Add(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return snaps, all, sb
}

// TestSealPrefixAlwaysValid is the core always-valid-prefix property:
// at every seal point, the snapshot opens cleanly with WithLiveTail and
// exposes exactly the sealed frames, whose records are an exact prefix
// of the final record sequence.
func TestSealPrefixAlwaysValid(t *testing.T) {
	snaps, all, _ := writeWithSeals(t, 400, WriterOptions{FrameBytes: 512, FramesPerDir: 3})
	if len(snaps) < 3 {
		t.Fatalf("want several seals, got %d", len(snaps))
	}
	prevFrames := -1
	for i, sn := range snaps {
		if int64(len(sn.bytes)) != sn.info.Size {
			t.Fatalf("seal %d: snapshot %d bytes but SealInfo.Size %d", i, len(sn.bytes), sn.info.Size)
		}
		if sn.info.Frames <= prevFrames && !sn.info.Final {
			t.Fatalf("seal %d: frames did not grow (%d -> %d)", i, prevFrames, sn.info.Frames)
		}
		prevFrames = sn.info.Frames

		// The live file may have grown past the seal (a next directory
		// mid-flush): garbage beyond the sealed size must be invisible.
		grown := append(append([]byte(nil), sn.bytes...), 0xde, 0xad, 0xbe, 0xef)
		f, err := NewFile(NewSeekBufferFrom(grown), WithLiveTail(sn.info.Size))
		if err != nil {
			t.Fatalf("seal %d: open live tail: %v", i, err)
		}
		frames, err := f.Frames()
		if err != nil {
			t.Fatalf("seal %d: frames: %v", i, err)
		}
		if len(frames) != sn.info.Frames {
			t.Fatalf("seal %d: %d frames visible, SealInfo says %d", i, len(frames), sn.info.Frames)
		}
		recs, err := f.Scan().All()
		if err != nil {
			t.Fatalf("seal %d: scan: %v", i, err)
		}
		if len(recs) > len(all) {
			t.Fatalf("seal %d: %d records from %d written", i, len(recs), len(all))
		}
		for j := range recs {
			if !reflect.DeepEqual(normalize(recs[j]), normalize(all[j])) {
				t.Fatalf("seal %d: record %d differs:\n got %+v\nwant %+v", i, j, recs[j], all[j])
			}
		}
		if sn.info.Final && len(recs) != len(all) {
			t.Fatalf("final seal: %d records, want all %d", len(recs), len(all))
		}
		first, last, n, err := f.Stats()
		if err != nil {
			t.Fatalf("seal %d: stats: %v", i, err)
		}
		if n != int64(len(recs)) {
			t.Fatalf("seal %d: stats records %d, scan %d", i, n, len(recs))
		}
		if n > 0 && (first != recs[0].Start || last < recs[len(recs)-1].End()) {
			t.Fatalf("seal %d: stats bounds [%d,%d] inconsistent", i, first, last)
		}
		if sn.info.End != last && n > 0 {
			t.Fatalf("seal %d: SealInfo.End %d, stats last %d", i, sn.info.End, last)
		}
		f.Close()
	}
	if !snaps[len(snaps)-1].info.Final {
		t.Fatal("last seal not marked Final")
	}
}

// TestLiveTailPreload proves the registry path: a preloaded live
// snapshot answers window queries from memory, matching a full scan.
func TestLiveTailPreload(t *testing.T) {
	snaps, all, _ := writeWithSeals(t, 300, WriterOptions{FrameBytes: 512, FramesPerDir: 2})
	sn := snaps[len(snaps)/2]
	f, err := NewFile(NewSeekBufferFrom(sn.bytes), WithLiveTail(sn.info.Size))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Preload(); err != nil {
		t.Fatalf("preload live tail: %v", err)
	}
	recs, err := f.Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || len(recs) >= len(all) {
		t.Fatalf("mid-flight snapshot saw %d of %d records", len(recs), len(all))
	}
	lo, hi := recs[0].Start, recs[len(recs)-1].End()
	mid := lo + (hi-lo)/2
	fes, err := f.FramesInWindow(mid, hi)
	if err != nil {
		t.Fatal(err)
	}
	if len(fes) == 0 {
		t.Fatal("no frames in upper half window")
	}
	got, err := f.ScanWindow(mid, hi).All()
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for _, r := range recs {
		if r.End() >= mid && r.Start <= hi {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("window scan on live tail: %d records, want %d", len(got), want)
	}
}

// TestLiveTailHeaderOnly covers a snapshot taken before the first seal:
// only the header exists, and the trace reads as valid and empty.
func TestLiveTailHeaderOnly(t *testing.T) {
	sb := NewSeekBuffer()
	w, err := NewWriter(sb, testHeader(), WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sealed := w.SealedSize()
	if sealed != int64(sb.Len()) {
		t.Fatalf("header-only SealedSize %d, buffer %d", sealed, sb.Len())
	}
	f, err := NewFile(NewSeekBufferFrom(append([]byte(nil), sb.Bytes()...)), WithLiveTail(sealed))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Preload(); err != nil {
		t.Fatal(err)
	}
	recs, err := f.Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("header-only snapshot returned %d records", len(recs))
	}
	_, _, n, err := f.Stats()
	if err != nil || n != 0 {
		t.Fatalf("stats on empty live tail: n=%d err=%v", n, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLiveTailFinalEqualsPlainOpen: once Closed, a live-tail open at
// the final size behaves exactly like a plain open.
func TestLiveTailFinalEqualsPlainOpen(t *testing.T) {
	_, _, sb := writeWithSeals(t, 150, WriterOptions{FrameBytes: 1024, FramesPerDir: 4})
	plain, err := NewFile(NewSeekBufferFrom(sb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	live, err := NewFile(NewSeekBufferFrom(sb.Bytes()), WithLiveTail(int64(sb.Len())))
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	a, err := plain.Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	b, err := live.Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("live-tail open at final size differs from plain open")
	}
}

// TestLiveTailBounds rejects sealed sizes the file cannot satisfy.
func TestLiveTailBounds(t *testing.T) {
	sb := writeTestFile(t, 20, WriterOptions{})
	if _, err := NewFile(NewSeekBufferFrom(sb.Bytes()), WithLiveTail(int64(sb.Len())+1)); err == nil {
		t.Fatal("live tail beyond file size accepted")
	}
	if _, err := NewFile(NewSeekBufferFrom(sb.Bytes()), WithLiveTail(10)); err == nil {
		t.Fatal("live tail inside the header accepted")
	}
}

// TestSealPrefixSalvage: a crash that truncates the file exactly at a
// seal point must let the salvage reader recover every sealed frame —
// the sealed prefix is a self-consistent file minus the final link
// patch.
func TestSealPrefixSalvage(t *testing.T) {
	snaps, all, _ := writeWithSeals(t, 400, WriterOptions{FrameBytes: 512, FramesPerDir: 3})
	dir := t.TempDir()
	for i, sn := range snaps {
		if sn.info.Final {
			continue
		}
		path := filepath.Join(dir, "crash.ute")
		if err := os.WriteFile(path, sn.bytes, 0o644); err != nil {
			t.Fatal(err)
		}
		var res SalvageResult
		f, err := Open(path, WithSalvage(&res))
		if err != nil {
			t.Fatalf("seal %d: salvage open: %v", i, err)
		}
		if len(res.Frames) != sn.info.Frames {
			t.Fatalf("seal %d: salvage recovered %d frames, sealed %d", i, len(res.Frames), sn.info.Frames)
		}
		var recovered []Record
		for _, fe := range res.Frames {
			recs, err := f.FrameRecords(fe)
			if err != nil {
				t.Fatalf("seal %d: decode salvaged frame: %v", i, err)
			}
			recovered = append(recovered, recs...)
		}
		for j := range recovered {
			if !reflect.DeepEqual(normalize(recovered[j]), normalize(all[j])) {
				t.Fatalf("seal %d: salvaged record %d differs", i, j)
			}
		}
		f.Close()
	}
}
