package interval

import (
	"strings"
	"testing"

	"tracefw/internal/profile"
)

func validFile(t *testing.T, n int) *SeekBuffer {
	t.Helper()
	return writeTestFile(t, n, WriterOptions{FrameBytes: 512, FramesPerDir: 4})
}

func TestValidateCleanFile(t *testing.T) {
	sb := validFile(t, 500)
	f, err := ReadHeader(sb)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.Validate(profile.Standard())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 500 || rep.Frames == 0 || rep.Dirs == 0 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestValidateWithoutProfile(t *testing.T) {
	sb := validFile(t, 50)
	f, _ := ReadHeader(sb)
	if _, err := f.Validate(nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateWrongProfileVersion(t *testing.T) {
	sb := validFile(t, 10)
	f, _ := ReadHeader(sb)
	p := profile.New(0xbad)
	if _, err := f.Validate(p); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong version accepted: %v", err)
	}
}

// corruptAt flips one byte at off and reports whether the file still
// passes ReadHeader + Validate.
func corruptAt(t *testing.T, base []byte, off int) bool {
	t.Helper()
	mut := append([]byte(nil), base...)
	mut[off] ^= 0xff
	sb := NewSeekBuffer()
	sb.Write(mut)
	f, err := ReadHeader(sb)
	if err != nil {
		return false
	}
	_, err = f.Validate(profile.Standard())
	return err == nil
}

func TestValidateDetectsStructuralCorruption(t *testing.T) {
	sb := validFile(t, 300)
	base := append([]byte(nil), sb.Bytes()...)
	f, err := ReadHeader(sb)
	if err != nil {
		t.Fatal(err)
	}
	firstDir := int(f.FirstDir)
	dh := dirHeaderSize(CurrentHeaderVersion)
	// Structural fields whose corruption must always be caught: the
	// thread count (header offset 16), the first directory's frame count,
	// its prev/next links, its aggregate bounds and record count, and the
	// first frame entry's offset, byte size, record count, and time
	// bounds.
	offsets := map[string]int{
		"numThreads":   16,
		"dirNumFrames": firstDir + 0,
		"dirPrev":      firstDir + 8,
		"dirNext":      firstDir + 16,
		"dirStart":     firstDir + 24,
		"dirEnd":       firstDir + 32,
		"dirRecords":   firstDir + 40,
		"frameOffset":  firstDir + dh + 0,
		"frameBytes":   firstDir + dh + 8,
		"frameRecords": firstDir + dh + 12,
		"frameStart":   firstDir + dh + 16,
		"frameEnd":     firstDir + dh + 24,
	}
	for name, off := range offsets {
		if corruptAt(t, base, off) {
			t.Errorf("corrupting %s (offset %d) went undetected", name, off)
		}
	}
	// And a flip inside a record's type field must be caught by the
	// profile check (no spec for the mangled type).
	recOff := firstDir + dh + 4*entrySize(CurrentHeaderVersion) + 1 // skip the length byte
	if corruptAt(t, base, recOff) {
		t.Error("corrupting a record type byte went undetected")
	}
}

func TestValidateDetectsTruncation(t *testing.T) {
	sb := validFile(t, 300)
	base := sb.Bytes()
	for _, cut := range []int{len(base) - 1, len(base) / 2, len(base) / 4} {
		tr := NewSeekBuffer()
		tr.Write(base[:cut])
		f, err := ReadHeader(tr)
		if err != nil {
			continue
		}
		if _, err := f.Validate(profile.Standard()); err == nil {
			t.Fatalf("truncation at %d undetected", cut)
		}
	}
}

func TestValidateDetectsBadMagic(t *testing.T) {
	sb := validFile(t, 10)
	b := sb.Bytes()
	b[0] ^= 0xff
	tr := NewSeekBuffer()
	tr.Write(b)
	if _, err := ReadHeader(tr); err == nil {
		t.Fatal("bad magic accepted")
	}
}
