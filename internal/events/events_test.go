package events

import "testing"

func TestClassExtraction(t *testing.T) {
	cases := []struct {
		ty Type
		cl Class
	}{
		{EvRunning, ClassState},
		{EvDispatch, ClassSystem},
		{EvGlobalClock, ClassSystem},
		{EvMPISend, ClassMPI},
		{EvMPIAllgather, ClassMPI},
		{EvMarkerBegin, ClassUser},
	}
	for _, c := range cases {
		if got := c.ty.Class(); got != c.cl {
			t.Errorf("%s class = %#x, want %#x", c.ty.Name(), got, c.cl)
		}
	}
}

func TestNames(t *testing.T) {
	if EvMPISend.Name() != "MPI_Send" {
		t.Errorf("EvMPISend name = %q", EvMPISend.Name())
	}
	if EvRunning.Name() != "Running" {
		t.Errorf("EvRunning name = %q", EvRunning.Name())
	}
	if got := Type(0xbeef).Name(); got != "Type(0xbeef)" {
		t.Errorf("unknown type name = %q", got)
	}
}

func TestAllMPITypesNamed(t *testing.T) {
	for _, ty := range MPITypes {
		if ty.Name()[:4] != "MPI_" {
			t.Errorf("MPI type %#x has non-MPI name %q", ty, ty.Name())
		}
		if !IsMPI(ty) {
			t.Errorf("%s not recognized as MPI", ty.Name())
		}
	}
}

func TestIsCollective(t *testing.T) {
	coll := map[Type]bool{
		EvMPIBarrier: true, EvMPIBcast: true, EvMPIReduce: true,
		EvMPIAllreduce: true, EvMPIAlltoall: true, EvMPIGather: true,
		EvMPIScatter: true, EvMPIAllgather: true, EvMPIScan: true,
		EvMPIRedScat: true,
	}
	for _, ty := range MPITypes {
		if IsCollective(ty) != coll[ty] {
			t.Errorf("IsCollective(%s) = %v", ty.Name(), IsCollective(ty))
		}
	}
}

func TestIsPointToPoint(t *testing.T) {
	p2p := []Type{EvMPISend, EvMPIRecv, EvMPIIsend, EvMPIIrecv, EvMPISendrecv}
	for _, ty := range p2p {
		if !IsPointToPoint(ty) {
			t.Errorf("IsPointToPoint(%s) = false", ty.Name())
		}
	}
	for _, ty := range []Type{EvMPIBarrier, EvMPIWait, EvRunning, EvDispatch} {
		if IsPointToPoint(ty) {
			t.Errorf("IsPointToPoint(%s) = true", ty.Name())
		}
	}
}

func TestMaskEnabled(t *testing.T) {
	if MaskNone.Enabled(EvGlobalClock) {
		t.Error("MaskNone should disable everything, even clock records")
	}
	m := MaskMPI
	if !m.Enabled(EvMPISend) {
		t.Error("MaskMPI should enable MPI_Send")
	}
	if m.Enabled(EvDispatch) {
		t.Error("MaskMPI should not enable Dispatch")
	}
	// Infrastructure records ride along with any enabled class.
	if !m.Enabled(EvGlobalClock) || !m.Enabled(EvThreadInfo) {
		t.Error("clock/thread-info records must be enabled with any class")
	}
	if !MaskAll.Enabled(EvDispatch) || !MaskAll.Enabled(EvMarkerBegin) {
		t.Error("MaskAll should enable all classes")
	}
}

func TestStateTypesContainAllStates(t *testing.T) {
	if StateTypes[0] != EvRunning || StateTypes[1] != EvMarkerState {
		t.Fatalf("StateTypes prefix wrong: %v", StateTypes[:2])
	}
	if len(StateTypes) != 2+len(MPITypes)+len(IOTypes) {
		t.Fatalf("StateTypes has %d entries, want %d", len(StateTypes), 2+len(MPITypes)+len(IOTypes))
	}
}

func TestIOClass(t *testing.T) {
	for _, ty := range IOTypes {
		if !IsIO(ty) {
			t.Errorf("IsIO(%s) = false", ty.Name())
		}
		if IsMPI(ty) {
			t.Errorf("IO type %s classified as MPI", ty.Name())
		}
	}
	if !MaskAll.Enabled(EvIORead) || !MaskAll.Enabled(EvPageMiss) {
		t.Error("MaskAll should enable I/O events")
	}
	if MaskMPI.Enabled(EvIORead) {
		t.Error("MaskMPI should not enable I/O events")
	}
	if EvIORead.Name() != "IO_Read" || EvPageMiss.Name() != "PageMiss" {
		t.Error("I/O names wrong")
	}
}

func TestExtraFieldsDefinedForAllStates(t *testing.T) {
	for _, ty := range StateTypes {
		fs := ExtraFields(ty)
		if fs == nil {
			t.Errorf("no extra fields defined for %s", ty.Name())
		}
		seen := map[string]bool{}
		for _, f := range fs {
			if seen[f] {
				t.Errorf("%s has duplicate field %q", ty.Name(), f)
			}
			seen[f] = true
		}
	}
	if ExtraFields(EvDispatch) != nil {
		t.Error("dispatch events should have no interval fields")
	}
}

func TestSendHasMsgSizeSent(t *testing.T) {
	// Figure 5 of the paper depends on this field existing on sends.
	for _, ty := range []Type{EvMPISend, EvMPIIsend, EvMPISendrecv} {
		if !HasField(ty, FieldMsgSizeSent) {
			t.Errorf("%s lacks msgSizeSent", ty.Name())
		}
	}
	if HasField(EvMPIRecv, FieldMsgSizeSent) {
		t.Error("MPI_Recv should not have msgSizeSent")
	}
}

func TestEdgeString(t *testing.T) {
	if Point.String() != "point" || Entry.String() != "entry" || Exit.String() != "exit" {
		t.Error("edge names wrong")
	}
	if Edge(9).String() != "edge?" {
		t.Error("unknown edge name wrong")
	}
}

func TestThreadTypeName(t *testing.T) {
	if ThreadTypeName(ThreadMPI) != "mpi" || ThreadTypeName(ThreadUser) != "user" ||
		ThreadTypeName(ThreadSystem) != "system" || ThreadTypeName(7) != "unknown" {
		t.Error("thread type names wrong")
	}
}
