// Package events defines the event-type space of the unified tracing
// facility: the hook identifiers for system events (thread dispatch,
// global clock records), MPI events (one per traced routine, cut at
// entry and exit like the PMPI wrappers of the paper), and user marker
// events, together with their payload layouts and human-readable names.
//
// An event type's high byte is its class, which is what the trace
// options enable or disable ("events to be traced", paper §2.1).
package events

// Type identifies an event kind; it is the "event type" part of the
// hookword. The high byte is the Class.
type Type uint16

// Class groups event types for enable/disable masks.
type Class uint8

// Event classes.
const (
	ClassState  Class = 0x00 // synthetic interval states (never in raw traces)
	ClassSystem Class = 0x01 // thread dispatching, clock records
	ClassMPI    Class = 0x02 // MPI routine entry/exit
	ClassUser   Class = 0x04 // user-defined markers
	ClassIO     Class = 0x05 // file I/O and paging activity (the paper's
	// Summary names these as the natural future extension)
)

// Class returns the class of t.
func (t Type) Class() Class { return Class(t >> 8) }

// Synthetic interval states produced by the convert utility.
const (
	EvRunning     Type = 0x0010 // thread running outside MPI and markers
	EvMarkerState Type = 0x0011 // region between a user marker begin and end
)

// System events.
const (
	EvDispatch    Type = 0x0101 // thread dispatched onto a CPU; args: cpu
	EvUndispatch  Type = 0x0102 // thread taken off a CPU; args: cpu, reason
	EvThreadInfo  Type = 0x0103 // registry: args: pid, systid, taskid, threadType
	EvGlobalClock Type = 0x0110 // global clock record; args: global timestamp
)

// Undispatch reasons (args[1] of EvUndispatch).
const (
	UndispatchQuantum = 0 // time slice expired, thread still runnable
	UndispatchBlock   = 1 // thread blocked (e.g. inside an MPI wait)
	UndispatchExit    = 2 // thread terminated
)

// MPI events. Entry and exit records share the type; the record's Edge
// distinguishes them.
const (
	EvMPISend      Type = 0x0201
	EvMPIRecv      Type = 0x0202
	EvMPIIsend     Type = 0x0203
	EvMPIIrecv     Type = 0x0204
	EvMPIWait      Type = 0x0205
	EvMPIWaitall   Type = 0x0206
	EvMPISendrecv  Type = 0x0207
	EvMPIBarrier   Type = 0x0210
	EvMPIBcast     Type = 0x0211
	EvMPIReduce    Type = 0x0212
	EvMPIAllreduce Type = 0x0213
	EvMPIAlltoall  Type = 0x0214
	EvMPIGather    Type = 0x0215
	EvMPIScatter   Type = 0x0216
	EvMPIAllgather Type = 0x0217
	EvMPIScan      Type = 0x0218
	EvMPIRedScat   Type = 0x0219
	EvMPISsend     Type = 0x0208
)

// User marker events.
const (
	EvMarkerDefine Type = 0x0401 // args: localMarkerID; string payload: marker name
	EvMarkerBegin  Type = 0x0402 // args: localMarkerID, addr
	EvMarkerEnd    Type = 0x0403 // args: localMarkerID, addr
)

// I/O and paging events (§5's future extension). Reads and writes are
// entry/exit states like MPI calls; page misses are point events that
// become zero-duration intervals.
const (
	EvIORead   Type = 0x0501
	EvIOWrite  Type = 0x0502
	EvPageMiss Type = 0x0510
)

// Edge distinguishes entry/exit records of a state-like event from
// point events.
type Edge uint8

// Edge values.
const (
	Point Edge = 0 // instantaneous event (dispatch, clock record, marker define)
	Entry Edge = 1 // start of an MPI call
	Exit  Edge = 2 // end of an MPI call
)

// String returns the edge name.
func (e Edge) String() string {
	switch e {
	case Point:
		return "point"
	case Entry:
		return "entry"
	case Exit:
		return "exit"
	}
	return "edge?"
}

var names = map[Type]string{
	EvRunning:      "Running",
	EvMarkerState:  "Marker",
	EvDispatch:     "Dispatch",
	EvUndispatch:   "Undispatch",
	EvThreadInfo:   "ThreadInfo",
	EvGlobalClock:  "GlobalClock",
	EvMPISend:      "MPI_Send",
	EvMPIRecv:      "MPI_Recv",
	EvMPIIsend:     "MPI_Isend",
	EvMPIIrecv:     "MPI_Irecv",
	EvMPIWait:      "MPI_Wait",
	EvMPIWaitall:   "MPI_Waitall",
	EvMPISendrecv:  "MPI_Sendrecv",
	EvMPIBarrier:   "MPI_Barrier",
	EvMPIBcast:     "MPI_Bcast",
	EvMPIReduce:    "MPI_Reduce",
	EvMPIAllreduce: "MPI_Allreduce",
	EvMPIAlltoall:  "MPI_Alltoall",
	EvMPIGather:    "MPI_Gather",
	EvMPIScatter:   "MPI_Scatter",
	EvMPIAllgather: "MPI_Allgather",
	EvMPIScan:      "MPI_Scan",
	EvMPIRedScat:   "MPI_Reduce_scatter",
	EvMPISsend:     "MPI_Ssend",
	EvMarkerDefine: "MarkerDefine",
	EvMarkerBegin:  "MarkerBegin",
	EvMarkerEnd:    "MarkerEnd",
	EvIORead:       "IO_Read",
	EvIOWrite:      "IO_Write",
	EvPageMiss:     "PageMiss",
}

// Name returns the canonical name of t, or a hex form for unknown types.
func (t Type) Name() string {
	if n, ok := names[t]; ok {
		return n
	}
	return "Type(0x" + hex4(uint16(t)) + ")"
}

func hex4(v uint16) string {
	const digits = "0123456789abcdef"
	return string([]byte{
		digits[v>>12&0xf], digits[v>>8&0xf], digits[v>>4&0xf], digits[v&0xf],
	})
}

// MPITypes lists every MPI event type, in ascending order. The slice is
// shared; callers must not modify it.
var MPITypes = []Type{
	EvMPISend, EvMPISsend, EvMPIRecv, EvMPIIsend, EvMPIIrecv, EvMPIWait,
	EvMPIWaitall, EvMPISendrecv, EvMPIBarrier, EvMPIBcast, EvMPIReduce,
	EvMPIAllreduce, EvMPIAlltoall, EvMPIGather, EvMPIScatter, EvMPIAllgather,
	EvMPIScan, EvMPIRedScat,
}

// IsMPI reports whether t is an MPI routine event.
func IsMPI(t Type) bool { return t.Class() == ClassMPI }

// IsCollective reports whether t is a collective MPI routine.
func IsCollective(t Type) bool { return t >= EvMPIBarrier && t <= EvMPIRedScat }

// IsPointToPoint reports whether t is a point-to-point MPI routine whose
// records carry a message sequence number.
func IsPointToPoint(t Type) bool {
	switch t {
	case EvMPISend, EvMPISsend, EvMPIRecv, EvMPIIsend, EvMPIIrecv, EvMPISendrecv:
		return true
	}
	return false
}

// IOTypes lists the I/O-class state types.
var IOTypes = []Type{EvIORead, EvIOWrite, EvPageMiss}

// IsIO reports whether t is an I/O-class event.
func IsIO(t Type) bool { return t.Class() == ClassIO }

// StateTypes lists every event type that becomes an interval state in
// converted files (MPI routines, I/O activity, plus the synthetic
// states). The slice is shared; callers must not modify it.
var StateTypes = func() []Type {
	ts := []Type{EvRunning, EvMarkerState}
	ts = append(ts, MPITypes...)
	return append(ts, IOTypes...)
}()

// Mask is a set of event classes enabled for tracing.
type Mask uint32

// Mask presets.
const (
	MaskNone   Mask = 0
	MaskSystem Mask = 1 << uint(ClassSystem)
	MaskMPI    Mask = 1 << uint(ClassMPI)
	MaskUser   Mask = 1 << uint(ClassUser)
	MaskIO     Mask = 1 << uint(ClassIO)
	MaskAll    Mask = MaskSystem | MaskMPI | MaskUser | MaskIO
)

// Enabled reports whether events of type t pass the mask. ThreadInfo and
// GlobalClock records are always cut when any class is enabled, because
// conversion and merging cannot work without them.
func (m Mask) Enabled(t Type) bool {
	if m == MaskNone {
		return false
	}
	if t == EvThreadInfo || t == EvGlobalClock {
		return true
	}
	return m&(1<<uint(t.Class())) != 0
}

// Thread categories of the interval file thread table (paper §2.3.3:
// "Threads in a thread table are partitioned into three categories").
const (
	ThreadMPI    = 0
	ThreadUser   = 1
	ThreadSystem = 2
)

// ThreadTypeName names a thread-table category.
func ThreadTypeName(tt int) string {
	switch tt {
	case ThreadMPI:
		return "mpi"
	case ThreadUser:
		return "user"
	case ThreadSystem:
		return "system"
	}
	return "unknown"
}
