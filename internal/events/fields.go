package events

// Extra interval-record field names, beyond the common fields that every
// interval record carries (paper §2.3.2). These names are what the
// statistics language and GetItemByName resolve; Figure 5 of the paper
// sums the "msgSizeSent" field.
const (
	FieldPeer        = "peer"        // p2p partner task, or root for rooted collectives
	FieldTag         = "tag"         // p2p message tag
	FieldMsgSizeSent = "msgSizeSent" // bytes sent by this call
	FieldMsgSizeRecv = "msgSizeRecv" // bytes received by this call
	FieldSeqno       = "seqno"       // per (src,dst) message sequence number
	FieldComm        = "comm"        // communicator id
	FieldRoot        = "root"        // root task of a rooted collective
	FieldCount       = "count"       // request count for Wait/Waitall
	FieldMarker      = "marker"      // user marker identifier
	FieldAddr        = "addr"        // instruction address (source browser hook)
	FieldEndAddr     = "endAddr"     // end-marker instruction address
	FieldGlobal      = "global"      // global timestamp of a clock record
	FieldRecvPeer    = "recvPeer"    // source of the receive half of Sendrecv
	FieldRecvSeqno   = "recvSeqno"   // seqno of the receive completed by Wait/Sendrecv
	FieldIOBytes     = "ioBytes"     // bytes moved by an I/O operation
)

// Common interval field names (paper §2.3.2: "record type, start time,
// duration, processor ID, node ID, and logical thread ID").
const (
	FieldType   = "type"
	FieldBebits = "bebits"
	FieldStart  = "start"
	FieldDura   = "dura"
	FieldCPU    = "cpu"
	FieldNode   = "node"
	FieldThread = "thread"
)

// CommonFields lists the common fields of every interval record, in
// on-disk order. The slice is shared; callers must not modify it.
var CommonFields = []string{
	FieldType, FieldBebits, FieldStart, FieldDura, FieldCPU, FieldNode, FieldThread,
}

var extraFields = map[Type][]string{
	EvRunning:     {},
	EvGlobalClock: {FieldGlobal},
	EvMarkerState: {FieldMarker, FieldAddr, FieldEndAddr},
	EvMPISend:     {FieldPeer, FieldTag, FieldMsgSizeSent, FieldSeqno, FieldComm, FieldAddr},
	EvMPIIsend:    {FieldPeer, FieldTag, FieldMsgSizeSent, FieldSeqno, FieldComm, FieldAddr},
	EvMPIRecv:     {FieldPeer, FieldTag, FieldMsgSizeRecv, FieldSeqno, FieldComm, FieldAddr},
	EvMPIIrecv:    {FieldPeer, FieldTag, FieldMsgSizeRecv, FieldSeqno, FieldComm, FieldAddr},
	// Wait carries the completion envelope when the waited request was a
	// receive, so send/receive matching also works for Irecv+Wait pairs.
	EvMPIWait:      {FieldCount, FieldRecvPeer, FieldRecvSeqno, FieldMsgSizeRecv, FieldAddr},
	EvMPIWaitall:   {FieldCount, FieldAddr},
	EvMPISendrecv:  {FieldPeer, FieldTag, FieldMsgSizeSent, FieldMsgSizeRecv, FieldSeqno, FieldRecvPeer, FieldRecvSeqno, FieldComm, FieldAddr},
	EvMPIBarrier:   {FieldComm, FieldAddr},
	EvMPIBcast:     {FieldRoot, FieldMsgSizeSent, FieldComm, FieldAddr},
	EvMPIReduce:    {FieldRoot, FieldMsgSizeSent, FieldComm, FieldAddr},
	EvMPIAllreduce: {FieldMsgSizeSent, FieldComm, FieldAddr},
	EvMPIAlltoall:  {FieldMsgSizeSent, FieldMsgSizeRecv, FieldComm, FieldAddr},
	EvMPIGather:    {FieldRoot, FieldMsgSizeSent, FieldComm, FieldAddr},
	EvMPIScatter:   {FieldRoot, FieldMsgSizeRecv, FieldComm, FieldAddr},
	EvMPIAllgather: {FieldMsgSizeSent, FieldMsgSizeRecv, FieldComm, FieldAddr},
	EvMPIScan:      {FieldMsgSizeSent, FieldComm, FieldAddr},
	EvMPIRedScat:   {FieldMsgSizeSent, FieldMsgSizeRecv, FieldComm, FieldAddr},
	EvMPISsend:     {FieldPeer, FieldTag, FieldMsgSizeSent, FieldSeqno, FieldComm, FieldAddr},
	EvIORead:       {FieldIOBytes, FieldAddr},
	EvIOWrite:      {FieldIOBytes, FieldAddr},
	EvPageMiss:     {FieldAddr},
}

// ExtraFields returns the ordered extra field names of interval records
// of state type t (nil for unknown types). All extra fields are unsigned
// 64-bit scalars in the standard profile. The slice is shared; callers
// must not modify it.
func ExtraFields(t Type) []string { return extraFields[t] }

// Vector field names. A state type may additionally carry one trailing
// vector field of unsigned 64-bit elements (the self-defining format
// supports arbitrary vector fields; the standard profile uses exactly
// one, on MPI_Waitall).
const (
	// FieldRecvEnvs is MPI_Waitall's vector of receive-completion
	// envelopes, flattened as (peer, seqno, bytes) triples — the
	// per-request information a single Wait carries in its scalar fields.
	FieldRecvEnvs = "recvEnvs"
)

var vectorField = map[Type]string{
	EvMPIWaitall: FieldRecvEnvs,
}

// VectorField returns the name of t's trailing vector field, or "".
func VectorField(t Type) string { return vectorField[t] }

// HasField reports whether state type t carries the named extra field.
func HasField(t Type, name string) bool {
	for _, f := range extraFields[t] {
		if f == name {
			return true
		}
	}
	return false
}
