# Tier-1 gate (see ROADMAP.md): everything `make ci` runs must stay
# green on every change.

GO ?= go

.PHONY: ci vet build test race bench-smoke bench fuzz-smoke

ci: vet build test race bench-smoke fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the convert and stats benchmarks as a smoke test:
# catches benchmark bit-rot without paying for a full measurement run.
# RouterWindow covers the serving tier's scatter-gather path,
# UteloadSmoke is one full load-generator run against a router fleet,
# SchedHotLoop pins the simulator's per-event cost, and SweepCell runs
# one scenario-sweep cell through the whole pipeline.
bench-smoke:
	$(GO) test -run xxx -bench 'ConvertPerEvent|ConvertParallel|StatsWindow|StatsParallel|StatsColumnar|IntervalEncodeV4|IntervalScanV4|ServeWindow|ServePreview|PreviewZoom|RouterWindow|UteloadSmoke|SchedHotLoop|SweepCell|^BenchmarkIngest$$' -benchtime 1x .

# A short fuzz of every target, one at a time (the fuzz engine allows a
# single -fuzz pattern per invocation): catches regressions the checked-in
# seed corpus alone would miss. Longer runs: raise FUZZTIME.
FUZZTIME ?= 5s
fuzz-smoke:
	$(GO) test -run xxx -fuzz '^FuzzOpen$$' -fuzztime $(FUZZTIME) ./internal/interval
	$(GO) test -run xxx -fuzz '^FuzzNextRecord$$' -fuzztime $(FUZZTIME) ./internal/interval
	$(GO) test -run xxx -fuzz '^FuzzScanWindow$$' -fuzztime $(FUZZTIME) ./internal/interval
	$(GO) test -run xxx -fuzz '^FuzzSalvage$$' -fuzztime $(FUZZTIME) ./internal/interval
	$(GO) test -run xxx -fuzz '^FuzzPyramid$$' -fuzztime $(FUZZTIME) ./internal/interval
	$(GO) test -run xxx -fuzz '^FuzzParseWindow$$' -fuzztime $(FUZZTIME) ./internal/clock
	$(GO) test -run xxx -fuzz '^FuzzCompile$$' -fuzztime $(FUZZTIME) ./internal/stats
	$(GO) test -run xxx -fuzz '^FuzzIngestBatch$$' -fuzztime $(FUZZTIME) ./internal/ingest

# Full measurement run over the pipeline and analysis benchmarks (slow;
# numbers are recorded in BENCH_pipeline.json, BENCH_stats.json,
# BENCH_ingest.json and BENCH_sim.json).
bench:
	$(GO) test -run xxx -bench 'ConvertPerEvent|ConvertParallel|MergeLoserTreeVsLinear|MergeReadAhead|IntervalWriterThroughput|IntervalScan|IntervalEncodeV4|StatsWindow|StatsParallel|StatsColumnar|RouterWindow|RouterScaling|SchedHotLoop|SweepCell|^BenchmarkIngest$$' .
