# Tier-1 gate (see ROADMAP.md): everything `make ci` runs must stay
# green on every change.

GO ?= go

.PHONY: ci vet build test race bench-smoke bench

ci: vet build test race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the convert and stats benchmarks as a smoke test:
# catches benchmark bit-rot without paying for a full measurement run.
bench-smoke:
	$(GO) test -run xxx -bench 'ConvertPerEvent|ConvertParallel|StatsWindow|StatsParallel' -benchtime 1x .

# Full measurement run over the pipeline and analysis benchmarks (slow;
# numbers are recorded in BENCH_pipeline.json and BENCH_stats.json).
bench:
	$(GO) test -run xxx -bench 'ConvertPerEvent|ConvertParallel|MergeLoserTreeVsLinear|MergeReadAhead|IntervalWriterThroughput|IntervalScan|StatsWindow|StatsParallel' .
