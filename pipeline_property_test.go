package tracefw

// Whole-pipeline property tests: random SPMD workloads are pushed
// through trace → convert → merge → SLOG, and cross-stage invariants are
// checked for every seed. These are the repository's strongest
// integration guarantees: they hold for arbitrary interleavings of
// computation, blocking and nonblocking communication, collectives,
// markers, and I/O.

import (
	"bytes"
	"sort"
	"testing"

	"tracefw/internal/convert"
	"tracefw/internal/core"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/merge"
	"tracefw/internal/profile"
	"tracefw/internal/workload"
)

func TestPipelinePropertiesRandomWorkloads(t *testing.T) {
	shapes := []struct {
		nodes, tpn, cpus int
	}{
		{1, 1, 1},
		{2, 1, 2},
		{2, 2, 2},
		{3, 2, 4},
	}
	for seed := uint64(1); seed <= 16; seed++ {
		sh := shapes[int(seed)%len(shapes)]
		run, err := core.Execute(core.Config{
			Nodes:        sh.nodes,
			CPUsPerNode:  sh.cpus,
			TasksPerNode: sh.tpn,
			Seed:         seed * 7,
			Convert:      interval.WriterOptions{FrameBytes: 4096},
		}, workload.Random{Seed: seed, Steps: 25}.Main())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkPipelineInvariants(t, seed, run)
		run.Close()
	}
}

func checkPipelineInvariants(t *testing.T, seed uint64, run *core.Run) {
	t.Helper()

	// Invariant 1: the merged file is structurally valid against the
	// standard profile (ordering, frame metadata, record layouts).
	if _, err := run.Merged.Validate(profile.Standard()); err != nil {
		t.Fatalf("seed %d: merged file invalid: %v", seed, err)
	}

	recs, err := run.Merged.Scan().All()
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}

	// Invariant 2: per thread, pieces never overlap (the innermost-state
	// timeline is a partial function of time). Zero-duration records are
	// exempt: point events (PageMiss) and the merge's frame-start pseudo
	// continuations legitimately sit inside enclosing pieces.
	perThread := map[[2]uint16][]interval.Record{}
	for _, r := range recs {
		if r.Type == events.EvGlobalClock || r.Dura == 0 {
			continue
		}
		k := [2]uint16{r.Node, r.Thread}
		perThread[k] = append(perThread[k], r)
	}
	for k, rs := range perThread {
		sort.SliceStable(rs, func(i, j int) bool { return rs[i].Start < rs[j].Start })
		for i := 1; i < len(rs); i++ {
			if rs[i].Start < rs[i-1].End() {
				t.Fatalf("seed %d: thread %v pieces overlap:\n%v\n%v", seed, k, rs[i-1], rs[i])
			}
		}
	}

	// Invariant 3: per state, begin/end pieces balance exactly and every
	// piece sequence is begin (continuation)* end.
	type skey struct {
		node, thread uint16
		ty           events.Type
	}
	openCount := map[skey]int{}
	for _, r := range recs {
		if r.Type == events.EvGlobalClock {
			continue
		}
		k := skey{r.Node, r.Thread, r.Type}
		switch r.Bebits {
		case profile.Begin:
			openCount[k]++
		case profile.Continuation:
			if openCount[k] <= 0 {
				t.Fatalf("seed %d: continuation of %s with nothing open", seed, r.Type.Name())
			}
		case profile.End:
			if openCount[k] <= 0 {
				t.Fatalf("seed %d: end of %s with nothing open", seed, r.Type.Name())
			}
			openCount[k]--
		}
	}
	for k, n := range openCount {
		if n != 0 {
			t.Fatalf("seed %d: %d unclosed %s states on n%d/t%d", seed, n, k.ty.Name(), k.node, k.thread)
		}
	}

	// Invariant 4: bytes conservation — total msgSizeSent on final send
	// pieces equals total msgSizeRecv on final receive-completion pieces
	// (every message is sent once and received once).
	var sent, recvd uint64
	for _, r := range recs {
		if r.Bebits != profile.Complete && r.Bebits != profile.End {
			continue
		}
		switch r.Type {
		case events.EvMPISend, events.EvMPIIsend, events.EvMPISsend, events.EvMPISendrecv:
			v, _ := r.Field(events.FieldMsgSizeSent)
			sent += v
		}
		switch r.Type {
		case events.EvMPIRecv, events.EvMPISendrecv:
			v, _ := r.Field(events.FieldMsgSizeRecv)
			recvd += v
		case events.EvMPIWait:
			v, _ := r.Field(events.FieldMsgSizeRecv)
			recvd += v
		case events.EvMPIWaitall:
			for i := 2; i < len(r.Vec); i += 3 {
				recvd += r.Vec[i]
			}
		}
	}
	if sent != recvd {
		t.Fatalf("seed %d: bytes not conserved: sent %d, received %d", seed, sent, recvd)
	}

	// Invariant 5: every point-to-point message produced exactly one
	// arrow (seqno-matched), so arrows == messages sent.
	var messages int64
	for _, r := range recs {
		if r.Bebits != profile.Complete && r.Bebits != profile.End {
			continue
		}
		switch r.Type {
		case events.EvMPISend, events.EvMPIIsend, events.EvMPISsend, events.EvMPISendrecv:
			if v, _ := r.Field(events.FieldSeqno); v != 0 {
				messages++
			}
		}
	}
	if run.SlogResult.Arrows != messages {
		t.Fatalf("seed %d: %d arrows for %d messages", seed, run.SlogResult.Arrows, messages)
	}

	// Invariant 6: preview durations conserve per-state record time
	// (within per-record rounding).
	perState := map[events.Type]int64{}
	for _, r := range recs {
		perState[r.Type] += int64(r.Dura)
	}
	for si, ty := range run.Slog.Preview.States {
		var got int64
		for _, d := range run.Slog.Preview.Dur[si] {
			got += int64(d)
		}
		diff := got - perState[ty]
		if diff < 0 {
			diff = -diff
		}
		if diff > int64(len(recs)+run.Slog.Bins) {
			t.Fatalf("seed %d: preview %s duration %d vs records %d", seed, ty.Name(), got, perState[ty])
		}
	}
}

// TestParallelPipelineMatchesSynchronous: over random workloads with
// drifting clocks, the parallel pipeline (worker-pool convert, read-ahead
// merge sources) emits convert outputs and a merged record stream
// byte-identical to the fully synchronous pipeline, across estimators
// and clock-record retention.
func TestParallelPipelineMatchesSynchronous(t *testing.T) {
	estimators := []merge.Estimator{
		merge.EstimatorRMS, merge.EstimatorLastPair, merge.EstimatorPiecewise, merge.EstimatorNone,
	}
	for seed := uint64(1); seed <= 8; seed++ {
		run, err := core.Execute(core.Config{
			Nodes:        3,
			CPUsPerNode:  2,
			TasksPerNode: 2,
			Seed:         seed,
			Drifts:       []float64{40e-6, -25e-6, 10e-6},
			Convert:      interval.WriterOptions{FrameBytes: 4096},
		}, workload.Random{Seed: seed, Steps: 30}.Main())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		raws := run.RawTraces
		run.Close()

		mopts := merge.Options{
			Estimator:        estimators[int(seed)%len(estimators)],
			KeepClockRecords: seed%2 == 0,
		}
		pipeline := func(parallel int) (convOuts [][]byte, merged []byte) {
			t.Helper()
			outs, _, err := convert.ConvertBuffers(raws, convert.Options{
				Writer:   interval.WriterOptions{FrameBytes: 4096},
				Parallel: parallel,
			})
			if err != nil {
				t.Fatalf("seed %d parallel %d: convert: %v", seed, parallel, err)
			}
			files := make([]*interval.File, len(outs))
			for i, sb := range outs {
				convOuts = append(convOuts, sb.Bytes())
				if files[i], err = interval.ReadHeader(sb); err != nil {
					t.Fatal(err)
				}
			}
			mo := mopts
			mo.Writer = interval.WriterOptions{FrameBytes: 4096}
			mo.Parallel = parallel
			msb := interval.NewSeekBuffer()
			if _, err := merge.Merge(files, msb, mo); err != nil {
				t.Fatalf("seed %d parallel %d: merge: %v", seed, parallel, err)
			}
			return convOuts, msb.Bytes()
		}

		seqConv, seqMerged := pipeline(1)
		for _, width := range []int{2, 6} {
			parConv, parMerged := pipeline(width)
			for i := range seqConv {
				if !bytes.Equal(parConv[i], seqConv[i]) {
					t.Fatalf("seed %d width %d: convert output %d differs from synchronous run", seed, width, i)
				}
			}
			if !bytes.Equal(parMerged, seqMerged) {
				t.Fatalf("seed %d width %d: merged output differs from synchronous run", seed, width)
			}
		}
	}
}

// TestPipelineSoak pushes a substantially larger random workload through
// the pipeline to exercise multi-directory interval files and many-frame
// SLOG files under the same invariants.
func TestPipelineSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	run, err := core.Execute(core.Config{
		Nodes:        4,
		CPUsPerNode:  4,
		TasksPerNode: 2,
		Seed:         99,
		Convert:      interval.WriterOptions{FrameBytes: 8 << 10, FramesPerDir: 4},
	}, workload.Random{Seed: 99, Steps: 500}.Main())
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	if run.TotalEvents() < 12000 {
		t.Fatalf("soak run too small: %d events", run.TotalEvents())
	}
	checkPipelineInvariants(t, 99, run)
	// The merged file must span several directories.
	dirs, err := run.Merged.Dirs()
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 3 {
		t.Fatalf("soak produced only %d directories", len(dirs))
	}
	if len(run.Slog.Index) < 8 {
		t.Fatalf("soak produced only %d slog frames", len(run.Slog.Index))
	}
}
