package tracefw

// Builds the command-line utilities and drives the paper's Figure 2 flow
// through the actual binaries: tracegen → uteconvert → utemerge (-slog)
// → utestats / uteview / utedump.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/profile"
	"tracefw/internal/xrand"
)

// buildCmds compiles every cmd once per test binary invocation.
func buildCmds(t *testing.T) string {
	t.Helper()
	bin := t.TempDir()
	for _, name := range []string{"tracegen", "uteconvert", "utemerge", "utestats", "uteview", "utedump", "utecheck", "utetraced", "uterouter", "uteload", "utesweep"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, name), "./cmd/"+name)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
	}
	return bin
}

func runCmd(t *testing.T, bin, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(bin, name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bin := buildCmds(t)
	dir := t.TempDir()

	// tracegen: small sppm run.
	out := runCmd(t, bin, "tracegen",
		"-out", dir, "-workload", "sppm", "-nodes", "2", "-cpus", "4", "-iters", "4", "-seed", "5")
	if !strings.Contains(out, "events") {
		t.Fatalf("tracegen output: %s", out)
	}
	for n := 0; n < 2; n++ {
		if _, err := os.Stat(filepath.Join(dir, "raw."+string(rune('0'+n)))); err != nil {
			t.Fatal(err)
		}
	}

	// uteconvert.
	out = runCmd(t, bin, "uteconvert", "-out-dir", dir,
		filepath.Join(dir, "raw.0"), filepath.Join(dir, "raw.1"))
	if !strings.Contains(out, "sec/event") {
		t.Fatalf("uteconvert output: %s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "profile.ute")); err != nil {
		t.Fatal("profile.ute missing")
	}

	// utemerge with SLOG and the summary-pyramid sidecar.
	merged := filepath.Join(dir, "merged.ute")
	slogPath := filepath.Join(dir, "trace.slog")
	out = runCmd(t, bin, "utemerge", "-o", merged, "-slog", slogPath, "-pyramid",
		filepath.Join(dir, "trace.0.ute"), filepath.Join(dir, "trace.1.ute"))
	if !strings.Contains(out, "ratio") || !strings.Contains(out, "slog") || !strings.Contains(out, "pyramid") {
		t.Fatalf("utemerge output: %s", out)
	}
	if _, err := os.Stat(merged + ".pyr"); err != nil {
		t.Fatal("utemerge -pyramid wrote no sidecar")
	}

	// utestats: predefined tables to stdout, then the paper's example.
	out = runCmd(t, bin, "utestats", "-check-profile", merged)
	if !strings.Contains(out, "interesting_by_node_bin") {
		t.Fatalf("utestats predefined output missing Figure 6 table:\n%s", out)
	}
	out = runCmd(t, bin, "utestats", "-e",
		`table name=sample condition=(start < 2) x=("node", node) y=("avg(duration)", dura, avg)`,
		merged)
	if !strings.Contains(out, "node\tavg(duration)") {
		t.Fatalf("utestats example output:\n%s", out)
	}

	// utestats to files with SVGs.
	statsDir := filepath.Join(dir, "stats")
	runCmd(t, bin, "utestats", "-out", statsDir, "-svg", merged)
	if _, err := os.Stat(filepath.Join(statsDir, "interesting_by_node_bin.svg")); err != nil {
		t.Fatal("stats SVG missing")
	}

	// uteview: all four views as SVG, the preview, ASCII, and a frame
	// fetch.
	for _, view := range []string{"thread-activity", "processor-activity", "thread-processor", "processor-thread"} {
		svgPath := filepath.Join(dir, view+".svg")
		runCmd(t, bin, "uteview", "-merged", merged, "-view", view, "-o", svgPath)
		b, err := os.ReadFile(svgPath)
		if err != nil || !strings.HasPrefix(string(b), "<svg") {
			t.Fatalf("view %s: err=%v", view, err)
		}
	}
	out = runCmd(t, bin, "uteview", "-merged", merged, "-ascii")
	if !strings.Contains(out, "legend:") {
		t.Fatalf("ascii view output:\n%s", out)
	}
	out = runCmd(t, bin, "uteview", "-slog", slogPath, "-preview", "-ascii")
	if !strings.Contains(out, "preview:") {
		t.Fatalf("preview output:\n%s", out)
	}
	// uteview -preview straight from the merged file: the auto engine
	// answers from the sidecar, -engine scan forces the frame decode,
	// and the rendering must not depend on which one ran.
	pvPyr := runCmd(t, bin, "uteview", "-merged", merged, "-preview", "-v", "-ascii")
	if !strings.Contains(pvPyr, "preview answered by pyramid engine") || !strings.Contains(pvPyr, "preview:") {
		t.Fatalf("merged preview output:\n%s", pvPyr)
	}
	pvScan := runCmd(t, bin, "uteview", "-merged", merged, "-preview", "-engine", "scan", "-v", "-ascii")
	if !strings.Contains(pvScan, "preview answered by scan engine") {
		t.Fatalf("merged preview scan output:\n%s", pvScan)
	}
	if stripDiag(pvPyr) != stripDiag(pvScan) {
		t.Fatalf("preview differs between engines:\n--- pyramid:\n%s\n--- scan:\n%s", pvPyr, pvScan)
	}

	out = runCmd(t, bin, "uteview", "-slog", slogPath, "-frame-at", "0.01")
	if !strings.Contains(out, "frame ") {
		t.Fatalf("frame fetch output:\n%s", out)
	}
	out = runCmd(t, bin, "uteview", "-merged", merged, "-slog", slogPath, "-arrows", "-ascii")
	if !strings.Contains(out, "legend:") {
		t.Fatalf("arrows view output:\n%s", out)
	}
	htmlPath := filepath.Join(dir, "viewer.html")
	runCmd(t, bin, "uteview", "-slog", slogPath, "-html", htmlPath)
	if b, err := os.ReadFile(htmlPath); err != nil || !strings.Contains(string(b), "const DATA = {") {
		t.Fatalf("html viewer: err=%v", err)
	}

	// uteview window + connected + state view.
	out = runCmd(t, bin, "uteview", "-merged", merged, "-view", "states", "-ascii")
	if !strings.Contains(out, "state-activity view") {
		t.Fatalf("state view output:\n%s", out)
	}
	out = runCmd(t, bin, "uteview", "-merged", merged, "-t0", "0.001", "-t1", "0.01", "-connected", "-ascii")
	if !strings.Contains(out, "0.001000s .. 0.010000s") {
		t.Fatalf("windowed view output:\n%s", out)
	}

	// utestats from a program file.
	progPath := filepath.Join(dir, "prog.st")
	prog := "table name=fromfile condition=(state == \"MPI_Send\") y=(\"n\", iscall, sum)\n"
	if err := os.WriteFile(progPath, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	out = runCmd(t, bin, "utestats", "-f", progPath, merged)
	if !strings.Contains(out, "fromfile") {
		t.Fatalf("utestats -f output:\n%s", out)
	}

	// utedump on every format.
	for _, f := range []string{"raw.0", "profile.ute", "merged.ute", "trace.slog", "merged.ute.pyr"} {
		out = runCmd(t, bin, "utedump", "-n", "3", filepath.Join(dir, f))
		if len(out) == 0 {
			t.Fatalf("utedump %s produced nothing", f)
		}
	}
	out = runCmd(t, bin, "utedump", "-frames", "-n", "2", merged)
	if !strings.Contains(out, "dir 0") {
		t.Fatalf("utedump -frames output:\n%s", out)
	}
	out = runCmd(t, bin, "utedump", "-validate", merged)
	if !strings.Contains(out, "valid (") {
		t.Fatalf("utedump -validate output:\n%s", out)
	}
	out = runCmd(t, bin, "utedump", merged+".pyr")
	if !strings.Contains(out, "pyramid: base width") || !strings.Contains(out, "level  0") {
		t.Fatalf("utedump pyramid output:\n%s", out)
	}
}

// stripDiag drops uteview's stderr diagnostics from combined output so
// renderings can be compared across engines.
func stripDiag(out string) string {
	var keep []string
	for _, ln := range strings.Split(out, "\n") {
		if strings.HasPrefix(ln, "uteview:") {
			continue
		}
		keep = append(keep, ln)
	}
	return strings.Join(keep, "\n")
}

func TestCLIWrapTolerant(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bin := buildCmds(t)
	dir := t.TempDir()
	runCmd(t, bin, "tracegen",
		"-out", dir, "-workload", "ring", "-nodes", "2", "-cpus", "1",
		"-iters", "200", "-bytes", "128", "-wrap", "-buffer", "8192")
	// Strict conversion must fail on the mid-stream trace...
	cmd := exec.Command(filepath.Join(bin, "uteconvert"), "-out-dir", dir,
		filepath.Join(dir, "raw.0"), filepath.Join(dir, "raw.1"))
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("strict conversion of wrapped trace succeeded:\n%s", out)
	}
	// ...and tolerant conversion must succeed and report skips.
	out := runCmd(t, bin, "uteconvert", "-tolerant", "-out-dir", dir,
		filepath.Join(dir, "raw.0"), filepath.Join(dir, "raw.1"))
	if !strings.Contains(out, "orphan events skipped") {
		t.Fatalf("tolerant conversion reported no skips:\n%s", out)
	}
	runCmd(t, bin, "utemerge", "-o", filepath.Join(dir, "merged.ute"),
		filepath.Join(dir, "trace.0.ute"), filepath.Join(dir, "trace.1.ute"))
}

// runCmdFail runs a command expecting failure and returns its exit code
// and stderr. A panic trace on stderr fails the test: CLI errors must be
// one-line diagnostics.
func runCmdFail(t *testing.T, bin, name string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(bin, name), args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		t.Fatalf("%s %v unexpectedly exited 0\nstderr: %s", name, args, stderr.String())
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("%s %v: %v", name, args, err)
	}
	msg := stderr.String()
	if strings.Contains(msg, "panic:") || strings.Contains(msg, "goroutine ") {
		t.Fatalf("%s %v panicked:\n%s", name, args, msg)
	}
	// A diagnostic must land somewhere: usage and I/O errors on stderr,
	// utecheck's verdict one-liner on stdout.
	if strings.TrimSpace(msg) == "" && strings.TrimSpace(stdout.String()) == "" {
		t.Fatalf("%s %v failed silently (no output)", name, args)
	}
	return ee.ExitCode(), msg
}

// writeIntervalFile writes a small valid interval file under the given
// header version and returns the records it holds.
func writeIntervalFile(t testing.TB, path string, version uint32, n int) []interval.Record {
	t.Helper()
	rng := xrand.New(42)
	recs := make([]interval.Record, n)
	end := clock.Time(0)
	for i := range recs {
		end += clock.Time(rng.Int63n(int64(clock.Millisecond)))
		recs[i] = interval.Record{
			Type:   events.EvMPISend,
			Bebits: profile.Complete,
			Start:  end - clock.Time(rng.Int63n(int64(clock.Microsecond))),
			Node:   uint16(i % 2),
			Extra:  []uint64{uint64(i), 7, 0, 0, 0, 0},
		}
		recs[i].Dura = end - recs[i].Start
	}
	hdr := interval.Header{
		ProfileVersion: profile.StdVersion,
		HeaderVersion:  version,
		FieldMask:      profile.MaskIndividual,
		Threads: []interval.ThreadEntry{
			{Task: 0, PID: 100, SysTID: 1, Node: 0, LTID: 0, Type: events.ThreadMPI},
			{Task: 1, PID: 101, SysTID: 2, Node: 1, LTID: 0, Type: events.ThreadMPI},
		},
	}
	fl, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := interval.NewWriter(fl, hdr, interval.WriterOptions{FrameBytes: 512, FramesPerDir: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Add(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestCLIErrorPaths drives every command down its failure paths: missing
// inputs, corrupt inputs, and invalid flag values must produce a non-zero
// exit and a one-line stderr diagnostic — never a panic or a silent 0.
func TestCLIErrorPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bin := buildCmds(t)
	dir := t.TempDir()

	missing := filepath.Join(dir, "nope.ute")
	garbage := filepath.Join(dir, "garbage.ute")
	if err := os.WriteFile(garbage, []byte("this is no trace format at all, but long enough to peek at"), 0o644); err != nil {
		t.Fatal(err)
	}
	good := filepath.Join(dir, "good.ute")
	writeIntervalFile(t, good, interval.CurrentHeaderVersion, 64)

	// A structurally intact v4 file whose compact frame payload is
	// damaged: checks must catch varint-stream corruption, not just
	// header rot.
	badv4 := filepath.Join(dir, "badv4.ute")
	writeIntervalFile(t, badv4, interval.CurrentHeaderVersion, 64)
	corruptFirstFrame(t, badv4)

	cases := []struct {
		name string
		args []string
		code int
	}{
		{"tracegen", []string{"-out", dir, "-nodes", "0"}, 2},
		{"tracegen", []string{"-out", dir, "-nodes", "-3"}, 2},
		{"tracegen", []string{"-out", dir, "-cpus", "0"}, 2},
		{"tracegen", []string{"-out", dir, "-tasks-per-node", "-1"}, 2},
		{"tracegen", []string{"-out", dir, "-buffer", "-1"}, 2},
		{"tracegen", []string{"-out", dir, "-wrap", "-buffer", "64"}, 2},
		{"tracegen", []string{"-out", dir, "-workload", "nope"}, 2},
		{"tracegen", []string{"-out", dir, "-workload", "ring", "-params", "wat=1"}, 2},
		{"tracegen", []string{"-out", dir, "-workload", "ring", "-params", "iters=0"}, 2},
		{"tracegen", []string{"-out", dir, "-workload", "ring", "-threads", "2"}, 2},
		{"tracegen", []string{"-out", dir, "-policy", "nope"}, 2},
		{"tracegen", []string{"-out", dir, "-policy", "oversub:1"}, 2},
		{"tracegen", []string{"-out", dir, "-outlier-prob", "1.5"}, 2},

		{"utesweep", []string{"-j", "-1"}, 2},
		{"utesweep", []string{"-nodes", "0"}, 2},
		{"utesweep", []string{"-policies", ""}, 2},
		{"utesweep", []string{"-policies", "nope"}, 2},
		{"utesweep", []string{"-workloads", "nope"}, 2},
		{"utesweep", []string{"-workloads", "ring(iters=0)"}, 2},
		{"utesweep", []string{"-workloads", "ring(iters=3"}, 2},

		{"uteconvert", nil, 2},
		{"uteconvert", []string{missing}, 1},
		{"uteconvert", []string{garbage}, 1},
		{"uteconvert", []string{"-j", "-1", good}, 2},

		{"utemerge", nil, 2},
		{"utemerge", []string{"-o", filepath.Join(dir, "out.ute"), missing}, 1},
		{"utemerge", []string{"-o", filepath.Join(dir, "out.ute"), garbage}, 1},
		{"utemerge", []string{"-j", "-2", "-o", filepath.Join(dir, "out.ute"), good}, 2},

		{"utestats", nil, 2},
		{"utestats", []string{missing}, 1},
		{"utestats", []string{garbage}, 1},
		{"utestats", []string{"-j", "-1", good}, 2},
		{"utestats", []string{"-window", "2:1", good}, 1},
		{"utestats", []string{"-window", "NaN:1", good}, 1},
		{"utestats", []string{"-window", "abc", good}, 1},

		{"utedump", nil, 2},
		{"utedump", []string{missing}, 1},
		{"utedump", []string{garbage}, 1},
		{"utedump", []string{"-j", "-1", good}, 2},
		{"utedump", []string{"-window", "Inf:", good}, 1},
		{"utedump", []string{"-window", "1:0.5", good}, 1},

		{"uteview", nil, 1}, // needs -merged
		{"uteview", []string{"-merged", missing}, 1},
		{"uteview", []string{"-merged", garbage}, 1},
		{"uteview", []string{"-j", "-1", "-merged", good}, 2},
		{"uteview", []string{"-t0", "2", "-t1", "1", "-merged", good}, 2},
		{"uteview", []string{"-window", "2:1", "-merged", good, "-ascii"}, 1},

		{"utecheck", nil, 3},
		{"utecheck", []string{good, good}, 3},
		{"utecheck", []string{"-nosuchflag", good}, 3},
		{"utecheck", []string{missing}, 3},
		{"utecheck", []string{garbage}, 2},
		{"utecheck", []string{badv4}, 1},

		{"utedump", []string{"-validate", badv4}, 1},
	}
	for _, tc := range cases {
		code, msg := runCmdFail(t, bin, tc.name, tc.args...)
		if code != tc.code {
			t.Errorf("%s %v: exit %d, want %d\nstderr: %s", tc.name, tc.args, code, tc.code, msg)
		}
	}

	// The same valid file must pass the success paths these failures
	// bracket.
	out := runCmd(t, bin, "utecheck", good)
	if !strings.Contains(out, "valid (") {
		t.Fatalf("utecheck on a valid file: %s", out)
	}
	runCmd(t, bin, "utedump", "-n", "2", "-window", "0:1", good)
	if out := runCmd(t, bin, "utedump", "-sizes", good); !strings.Contains(out, "B/record") {
		t.Fatalf("utedump -sizes output missing statistics:\n%s", out)
	}
}

// corruptFirstFrame flips one byte inside the first frame's encoded
// record bytes, leaving every checksum and directory intact.
func corruptFirstFrame(t *testing.T, path string) {
	t.Helper()
	f, err := interval.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := f.Frames()
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 {
		t.Fatal("no frames to corrupt")
	}
	fl, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	var b [1]byte
	if _, err := fl.ReadAt(b[:], frames[0].Offset); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := fl.WriteAt(b[:], frames[0].Offset); err != nil {
		t.Fatal(err)
	}
}

// TestCLISweep runs a small policy × workload grid end-to-end and checks
// the comparison tables are byte-identical across -j values and reruns.
func TestCLISweep(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bin := buildCmds(t)

	run := func(j int) (string, []byte) {
		out := t.TempDir()
		table := runCmd(t, bin, "utesweep",
			"-policies", "fifo,oversub",
			"-workloads", "imbalance(iters=2);bursty(waves=2,iters=2)",
			"-nodes", "2", "-cpus", "2", "-tasks-per-node", "2",
			"-seed", "7", "-j", fmt.Sprint(j), "-out", out)
		tsv, err := os.ReadFile(filepath.Join(out, "sweep.tsv"))
		if err != nil {
			t.Fatal(err)
		}
		return table, tsv
	}

	table1, tsv1 := run(1)
	_, tsv4 := run(4)
	_, tsvAgain := run(1)

	// runCmd captures stderr too, which carries host-dependent wall-clock
	// throughput — only the written artifacts are compared byte-for-byte.
	if !bytes.Equal(tsv1, tsv4) {
		t.Errorf("sweep.tsv differs between -j 1 and -j 4:\n--- j=1\n%s--- j=4\n%s", tsv1, tsv4)
	}
	if !bytes.Equal(tsv1, tsvAgain) {
		t.Errorf("sweep.tsv differs across reruns with the same seed")
	}
	for _, want := range []string{"workload\tpolicy", "imbalance(iters=2)", "bursty(", "fifo", "oversub"} {
		if !strings.Contains(table1, want) {
			t.Errorf("sweep table missing %q:\n%s", want, table1)
		}
	}
}

// utecheckReport mirrors utecheck's -json output shape.
type utecheckReport struct {
	Valid   bool                    `json:"valid"`
	Salvage *interval.SalvageReport `json:"salvage"`
	Repair  *interval.RepairReport  `json:"repair"`
}

// TestCLICheckRepair covers the acceptance path: utecheck -repair on a
// truncated v2 file must exit 1 and write a fresh file that validates
// and carries every salvaged frame.
func TestCLICheckRepair(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bin := buildCmds(t)
	dir := t.TempDir()

	pristine := filepath.Join(dir, "pristine.ute")
	writeIntervalFile(t, pristine, 2, 200)
	data, err := os.ReadFile(pristine)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.ute")
	if err := os.WriteFile(trunc, data[:len(data)*7/10], 0o644); err != nil {
		t.Fatal(err)
	}

	repaired := filepath.Join(dir, "repaired.ute")
	cmd := exec.Command(filepath.Join(bin, "utecheck"), "-json", "-repair", repaired, trunc)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err = cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("utecheck -repair on truncated file: err=%v (want exit 1)\nstderr: %s", err, stderr.String())
	}
	var rep utecheckReport
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("bad -json output: %v\n%s", err, stdout.String())
	}
	if rep.Valid || rep.Salvage == nil || rep.Repair == nil {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if rep.Salvage.FramesRecovered == 0 {
		t.Fatal("truncated file salvaged zero frames")
	}
	if rep.Repair.FramesWritten != rep.Salvage.FramesRecovered {
		t.Fatalf("repair wrote %d of %d salvaged frames",
			rep.Repair.FramesWritten, rep.Salvage.FramesRecovered)
	}

	// The repaired file must be fully valid and hold the salvaged records.
	rf, err := interval.Open(repaired)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	vrep, err := rf.Validate(nil)
	if err != nil {
		t.Fatalf("repaired file fails validation: %v", err)
	}
	if vrep.Records != rep.Salvage.RecordsRecovered {
		t.Fatalf("repaired file has %d records, salvage recovered %d",
			vrep.Records, rep.Salvage.RecordsRecovered)
	}
	out := runCmd(t, bin, "utecheck", repaired)
	if !strings.Contains(out, "valid (") {
		t.Fatalf("utecheck on repaired file: %s", out)
	}

	// Pyramid sidecar lifecycle: -repair-pyramid builds the missing
	// sidecar, a plain check cross-validates it, a corrupted sidecar is
	// reported as damaged without changing the exit code, and another
	// -repair-pyramid heals it.
	out = runCmd(t, bin, "utecheck", "-repair-pyramid", pristine)
	if !strings.Contains(out, "pyramid rebuilt") {
		t.Fatalf("utecheck -repair-pyramid (absent sidecar): %s", out)
	}
	out = runCmd(t, bin, "utecheck", pristine)
	if !strings.Contains(out, "pyramid ok (") {
		t.Fatalf("utecheck after pyramid rebuild: %s", out)
	}
	pyr := pristine + ".pyr"
	pd, err := os.ReadFile(pyr)
	if err != nil {
		t.Fatal(err)
	}
	pd[len(pd)-1] ^= 0xff
	if err := os.WriteFile(pyr, pd, 0o644); err != nil {
		t.Fatal(err)
	}
	out = runCmd(t, bin, "utecheck", pristine) // still exits 0: the sidecar is advisory
	if !strings.Contains(out, "valid (") || !strings.Contains(out, "pyramid damaged") {
		t.Fatalf("utecheck on corrupted sidecar: %s", out)
	}
	out = runCmd(t, bin, "utecheck", "-repair-pyramid", pristine)
	if !strings.Contains(out, "pyramid rebuilt (was:") {
		t.Fatalf("utecheck -repair-pyramid (damaged sidecar): %s", out)
	}
	out = runCmd(t, bin, "utecheck", pristine)
	if !strings.Contains(out, "pyramid ok (") {
		t.Fatalf("utecheck after healing sidecar: %s", out)
	}
}

// TestCLITraceDaemon drives utetraced end to end: start on an ephemeral
// port with a preloaded trace, parse the printed listen address, query
// the JSON and TSV endpoints over real HTTP, and shut down with SIGINT
// expecting a clean exit.
func TestCLITraceDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bin := buildCmds(t)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.ute")
	writeIntervalFile(t, tracePath, interval.CurrentHeaderVersion, 200)

	cmd := exec.Command(filepath.Join(bin, "utetraced"), "-addr", "127.0.0.1:0", tracePath)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon prints "opened ... as t1" then "listening on http://...".
	sc := bufio.NewScanner(stdout)
	var base string
	for sc.Scan() {
		if _, addr, ok := strings.Cut(sc.Text(), "listening on "); ok {
			base = addr
			break
		}
	}
	if base == "" {
		t.Fatalf("no listen line; daemon output ended: %v", sc.Err())
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	code, body := get("/v1/traces")
	if code != 200 || !strings.Contains(body, tracePath) {
		t.Fatalf("list: %d %s", code, body)
	}
	var list struct {
		Traces []struct {
			ID      string `json:"id"`
			Records int64  `json:"records"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 1 || list.Traces[0].Records != 200 {
		t.Fatalf("preloaded trace metadata: %+v", list)
	}
	id := list.Traces[0].ID

	if code, body = get("/v1/traces/" + id + "/records?count=1"); code != 200 || !strings.Contains(body, `"count": 200`) {
		t.Fatalf("records count: %d %s", code, body)
	}
	if code, body = get("/v1/traces/" + id + "/stats"); code != 200 || !strings.Contains(body, "# table") {
		t.Fatalf("stats: %d %.200s", code, body)
	}
	if code, body = get("/v1/traces/" + id + "/preview.svg"); code != 200 || !strings.HasPrefix(body, "<svg") {
		t.Fatalf("preview: %d %.200s", code, body)
	}
	if code, body = get("/metrics"); code != 200 || !strings.Contains(body, "tracesvc_traces_open 1") {
		t.Fatalf("metrics: %d %.200s", code, body)
	}

	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	var tail strings.Builder
	for sc.Scan() {
		tail.WriteString(sc.Text())
		tail.WriteByte('\n')
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGINT: %v\n%s", err, tail.String())
	}
	if !strings.Contains(tail.String(), "shut down") {
		t.Fatalf("daemon did not announce shutdown:\n%s", tail.String())
	}
}

// TestCLIServingTier stands up the full horizontal serving tier as real
// processes: two utetraced backends, a uterouter splitting a preloaded
// trace across them, and a uteload run against the router. The router's
// answers must match a single backend's byte for byte, uteload must
// finish with zero errors, and every process must shut down cleanly on
// SIGINT.
func TestCLIServingTier(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bin := buildCmds(t)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.ute")
	writeIntervalFile(t, tracePath, interval.CurrentHeaderVersion, 400)

	// Flag misuse is exit 2 before anything binds.
	if code, msg := runCmdFail(t, bin, "uterouter"); code != 2 || !strings.Contains(msg, "-backends is required") {
		t.Fatalf("uterouter without -backends: exit %d, stderr %q", code, msg)
	}
	if code, msg := runCmdFail(t, bin, "uteload"); code != 2 || !strings.Contains(msg, "-url is required") {
		t.Fatalf("uteload without -url: exit %d, stderr %q", code, msg)
	}
	if code, msg := runCmdFail(t, bin, "uteload", "-url", "http://127.0.0.1:1", "-mix", "stats=x"); code != 2 || !strings.Contains(msg, "bad -mix") {
		t.Fatalf("uteload with bad -mix: exit %d, stderr %q", code, msg)
	}

	// start launches one daemon binary, waits for its listen line, and
	// returns the base URL plus a stopper asserting a clean SIGINT exit.
	start := func(name string, args ...string) (base string, stop func()) {
		cmd := exec.Command(filepath.Join(bin, name), args...)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = cmd.Stdout
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill() })
		sc := bufio.NewScanner(stdout)
		var pre strings.Builder
		for sc.Scan() {
			if _, addr, ok := strings.Cut(sc.Text(), "listening on "); ok {
				base = addr
				break
			}
			pre.WriteString(sc.Text())
			pre.WriteByte('\n')
		}
		if base == "" {
			t.Fatalf("%s printed no listen line: %v\n%s", name, sc.Err(), pre.String())
		}
		stop = func() {
			if err := cmd.Process.Signal(os.Interrupt); err != nil {
				t.Fatal(err)
			}
			var tail strings.Builder
			for sc.Scan() {
				tail.WriteString(sc.Text())
				tail.WriteByte('\n')
			}
			if err := cmd.Wait(); err != nil {
				t.Fatalf("%s exit after SIGINT: %v\n%s", name, err, tail.String())
			}
			if !strings.Contains(tail.String(), "shut down") {
				t.Fatalf("%s did not announce shutdown:\n%s", name, tail.String())
			}
		}
		return base, stop
	}
	get := func(base, path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	b0, stop0 := start("utetraced", "-addr", "127.0.0.1:0")
	b1, stop1 := start("utetraced", "-addr", "127.0.0.1:0")
	// -split-frames 1 forces the trace into per-backend segments even at
	// this test's size, so scatter-gather actually runs.
	router, stopRouter := start("uterouter",
		"-addr", "127.0.0.1:0", "-backends", b0+","+b1, "-split-frames", "1", tracePath)

	if code, body := get(router, "/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("router healthz: %d %q", code, body)
	}
	if code, body := get(router, "/readyz"); code != 200 || body != "ready\n" {
		t.Fatalf("router readyz: %d %q", code, body)
	}
	code, body := get(router, "/v1/traces")
	if code != 200 || !strings.Contains(body, tracePath) {
		t.Fatalf("router list: %d %s", code, body)
	}
	if code, body := get(router, "/v1/traces/t1/records?count=1"); code != 200 || !strings.Contains(body, `"count": 400`) {
		t.Fatalf("router records count: %d %s", code, body)
	}
	// Byte identity through real processes: the backends each hold the
	// whole trace as their own t1, so a direct backend answer is the
	// single-node reference for the router's scatter-gathered one.
	for _, q := range []string{"/records?limit=25&offset=190", "/stats", "/preview.svg"} {
		cr, br := get(router, "/v1/traces/t1"+q)
		cb, bb := get(b0, "/v1/traces/t1"+q)
		if cr != 200 || cb != 200 || br != bb {
			t.Fatalf("router vs backend mismatch on %s: %d/%d\nrouter: %.200s\nbackend: %.200s", q, cr, cb, br, bb)
		}
	}
	if code, body := get(router, "/metrics"); code != 200 ||
		!strings.Contains(body, "uterouter_ring_points") ||
		!strings.Contains(body, "uterouter_scatter_queries_total") {
		t.Fatalf("router metrics: %d %.300s", code, body)
	}

	// uteload against the router, scraping both backends' caches.
	out := runCmd(t, bin, "uteload", "-url", router, "-backends", b0+","+b1,
		"-clients", "2", "-requests", "40", "-windows", "4", "-json")
	var rep struct {
		Traces int `json:"traces"`
		Cold   struct {
			Requests int `json:"requests"`
			Errors   int `json:"errors"`
		} `json:"cold"`
		Warm struct {
			Requests int     `json:"requests"`
			Errors   int     `json:"errors"`
			QPS      float64 `json:"qps"`
			P99Ms    float64 `json:"p99_ms"`
		} `json:"warm"`
		Backends []struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"backends"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("uteload -json output: %v\n%s", err, out)
	}
	if rep.Traces != 1 || rep.Warm.Requests != 40 || rep.Cold.Errors != 0 || rep.Warm.Errors != 0 {
		t.Fatalf("uteload report: %s", out)
	}
	if rep.Warm.QPS <= 0 || rep.Warm.P99Ms <= 0 {
		t.Fatalf("uteload reported no throughput: %s", out)
	}
	if len(rep.Backends) != 2 {
		t.Fatalf("uteload scraped %d backends, want 2: %s", len(rep.Backends), out)
	}
	// The split means both backends serve frames for this one trace.
	for i, b := range rep.Backends {
		if b.Hits+b.Misses == 0 {
			t.Fatalf("backend %d saw no cache traffic: %s", i, out)
		}
	}

	stopRouter()
	stop1()
	stop0()
}

// TestCLITraceDaemonIngest covers the utetraced streaming-ingest flags:
// flag misuse exits 2, an unusable -ingest-dir exits 1 before the socket
// binds, a daemon without -ingest-dir serves 403 on the ingest endpoints,
// and an enabled daemon enforces trace-name validation and the batch
// size cap over real HTTP, then drains cleanly on SIGINT.
func TestCLITraceDaemonIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bin := buildCmds(t)

	// Flag misuse: a non-positive batch cap is a usage error (exit 2).
	for _, v := range []string{"0", "-5"} {
		code, msg := runCmdFail(t, bin, "utetraced", "-ingest-max-batch", v)
		if code != 2 || !strings.Contains(msg, "-ingest-max-batch must be positive") {
			t.Fatalf("-ingest-max-batch %s: exit %d, stderr %q", v, code, msg)
		}
	}
	// A missing ingest directory is a startup error (exit 1): the daemon
	// refuses to run rather than silently disabling the write path.
	code, msg := runCmdFail(t, bin, "utetraced",
		"-ingest-dir", filepath.Join(t.TempDir(), "does-not-exist"))
	if code != 1 || !strings.Contains(msg, "utetraced:") {
		t.Fatalf("bad -ingest-dir: exit %d, stderr %q", code, msg)
	}

	// start launches a daemon, waits for the listen line, and returns the
	// base URL, the startup lines printed before it, and a stopper that
	// SIGINTs and asserts a clean, announced shutdown.
	start := func(args ...string) (base, head string, stop func()) {
		cmd := exec.Command(filepath.Join(bin, "utetraced"), args...)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = cmd.Stdout
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill() })
		sc := bufio.NewScanner(stdout)
		var pre strings.Builder
		for sc.Scan() {
			if _, addr, ok := strings.Cut(sc.Text(), "listening on "); ok {
				base = addr
				break
			}
			pre.WriteString(sc.Text())
			pre.WriteByte('\n')
		}
		if base == "" {
			t.Fatalf("no listen line; daemon output ended: %v\n%s", sc.Err(), pre.String())
		}
		stop = func() {
			if err := cmd.Process.Signal(os.Interrupt); err != nil {
				t.Fatal(err)
			}
			var tail strings.Builder
			for sc.Scan() {
				tail.WriteString(sc.Text())
				tail.WriteByte('\n')
			}
			if err := cmd.Wait(); err != nil {
				t.Fatalf("daemon exit after SIGINT: %v\n%s", err, tail.String())
			}
			if !strings.Contains(tail.String(), "shut down") {
				t.Fatalf("daemon did not announce shutdown:\n%s", tail.String())
			}
		}
		return base, pre.String(), stop
	}
	post := func(base, path string, body []byte) (int, string) {
		resp, err := http.Post(base+path, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	// Without -ingest-dir every ingest endpoint is a 403, read and write.
	base, _, stop := start("-addr", "127.0.0.1:0")
	if resp, err := http.Get(base + "/v1/ingest"); err != nil || resp.StatusCode != 403 {
		t.Fatalf("ingest list on disabled daemon: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
	if code, body := post(base, "/v1/ingest/run?op=begin&nodes=1", nil); code != 403 {
		t.Fatalf("begin on disabled daemon: %d %s", code, body)
	}
	stop()

	// Enabled daemon with a deliberately small batch cap.
	liveDir := t.TempDir()
	base, head, stop := start("-addr", "127.0.0.1:0",
		"-ingest-dir", liveDir, "-ingest-max-batch", "4096")
	if !strings.Contains(head, "ingest enabled") {
		t.Fatalf("enabled daemon did not announce ingest:\n%s", head)
	}
	if code, body := post(base, "/v1/ingest/.hidden?op=begin&nodes=1", nil); code != 400 {
		t.Fatalf("begin with bad trace name: %d %s", code, body)
	}
	code, body := post(base, "/v1/ingest/live?op=begin&nodes=1", nil)
	if code != 201 || !strings.Contains(body, `"live"`) {
		t.Fatalf("begin: %d %s", code, body)
	}
	if code, body := post(base, "/v1/ingest/live?node=0&seq=0", make([]byte, 5000)); code != 413 {
		t.Fatalf("oversized batch: %d %s", code, body)
	}
	if resp, err := http.Get(base + "/v1/ingest"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("ingest list: %v %v", resp, err)
	} else {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(b), `"live"`) {
			t.Fatalf("session missing from list: %s", b)
		}
	}
	// SIGINT with the session still gathering: shutdown must drain it and
	// still announce a clean exit.
	stop()
}
