package tracefw

// Builds the command-line utilities and drives the paper's Figure 2 flow
// through the actual binaries: tracegen → uteconvert → utemerge (-slog)
// → utestats / uteview / utedump.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmds compiles every cmd once per test binary invocation.
func buildCmds(t *testing.T) string {
	t.Helper()
	bin := t.TempDir()
	for _, name := range []string{"tracegen", "uteconvert", "utemerge", "utestats", "uteview", "utedump"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, name), "./cmd/"+name)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
	}
	return bin
}

func runCmd(t *testing.T, bin, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(bin, name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bin := buildCmds(t)
	dir := t.TempDir()

	// tracegen: small sppm run.
	out := runCmd(t, bin, "tracegen",
		"-out", dir, "-workload", "sppm", "-nodes", "2", "-cpus", "4", "-iters", "4", "-seed", "5")
	if !strings.Contains(out, "events") {
		t.Fatalf("tracegen output: %s", out)
	}
	for n := 0; n < 2; n++ {
		if _, err := os.Stat(filepath.Join(dir, "raw."+string(rune('0'+n)))); err != nil {
			t.Fatal(err)
		}
	}

	// uteconvert.
	out = runCmd(t, bin, "uteconvert", "-out-dir", dir,
		filepath.Join(dir, "raw.0"), filepath.Join(dir, "raw.1"))
	if !strings.Contains(out, "sec/event") {
		t.Fatalf("uteconvert output: %s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "profile.ute")); err != nil {
		t.Fatal("profile.ute missing")
	}

	// utemerge with SLOG.
	merged := filepath.Join(dir, "merged.ute")
	slogPath := filepath.Join(dir, "trace.slog")
	out = runCmd(t, bin, "utemerge", "-o", merged, "-slog", slogPath,
		filepath.Join(dir, "trace.0.ute"), filepath.Join(dir, "trace.1.ute"))
	if !strings.Contains(out, "ratio") || !strings.Contains(out, "slog") {
		t.Fatalf("utemerge output: %s", out)
	}

	// utestats: predefined tables to stdout, then the paper's example.
	out = runCmd(t, bin, "utestats", "-check-profile", merged)
	if !strings.Contains(out, "interesting_by_node_bin") {
		t.Fatalf("utestats predefined output missing Figure 6 table:\n%s", out)
	}
	out = runCmd(t, bin, "utestats", "-e",
		`table name=sample condition=(start < 2) x=("node", node) y=("avg(duration)", dura, avg)`,
		merged)
	if !strings.Contains(out, "node\tavg(duration)") {
		t.Fatalf("utestats example output:\n%s", out)
	}

	// utestats to files with SVGs.
	statsDir := filepath.Join(dir, "stats")
	runCmd(t, bin, "utestats", "-out", statsDir, "-svg", merged)
	if _, err := os.Stat(filepath.Join(statsDir, "interesting_by_node_bin.svg")); err != nil {
		t.Fatal("stats SVG missing")
	}

	// uteview: all four views as SVG, the preview, ASCII, and a frame
	// fetch.
	for _, view := range []string{"thread-activity", "processor-activity", "thread-processor", "processor-thread"} {
		svgPath := filepath.Join(dir, view+".svg")
		runCmd(t, bin, "uteview", "-merged", merged, "-view", view, "-o", svgPath)
		b, err := os.ReadFile(svgPath)
		if err != nil || !strings.HasPrefix(string(b), "<svg") {
			t.Fatalf("view %s: err=%v", view, err)
		}
	}
	out = runCmd(t, bin, "uteview", "-merged", merged, "-ascii")
	if !strings.Contains(out, "legend:") {
		t.Fatalf("ascii view output:\n%s", out)
	}
	out = runCmd(t, bin, "uteview", "-slog", slogPath, "-preview", "-ascii")
	if !strings.Contains(out, "preview:") {
		t.Fatalf("preview output:\n%s", out)
	}
	out = runCmd(t, bin, "uteview", "-slog", slogPath, "-frame-at", "0.01")
	if !strings.Contains(out, "frame ") {
		t.Fatalf("frame fetch output:\n%s", out)
	}
	out = runCmd(t, bin, "uteview", "-merged", merged, "-slog", slogPath, "-arrows", "-ascii")
	if !strings.Contains(out, "legend:") {
		t.Fatalf("arrows view output:\n%s", out)
	}
	htmlPath := filepath.Join(dir, "viewer.html")
	runCmd(t, bin, "uteview", "-slog", slogPath, "-html", htmlPath)
	if b, err := os.ReadFile(htmlPath); err != nil || !strings.Contains(string(b), "const DATA = {") {
		t.Fatalf("html viewer: err=%v", err)
	}

	// uteview window + connected + state view.
	out = runCmd(t, bin, "uteview", "-merged", merged, "-view", "states", "-ascii")
	if !strings.Contains(out, "state-activity view") {
		t.Fatalf("state view output:\n%s", out)
	}
	out = runCmd(t, bin, "uteview", "-merged", merged, "-t0", "0.001", "-t1", "0.01", "-connected", "-ascii")
	if !strings.Contains(out, "0.001000s .. 0.010000s") {
		t.Fatalf("windowed view output:\n%s", out)
	}

	// utestats from a program file.
	progPath := filepath.Join(dir, "prog.st")
	prog := "table name=fromfile condition=(state == \"MPI_Send\") y=(\"n\", iscall, sum)\n"
	if err := os.WriteFile(progPath, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	out = runCmd(t, bin, "utestats", "-f", progPath, merged)
	if !strings.Contains(out, "fromfile") {
		t.Fatalf("utestats -f output:\n%s", out)
	}

	// utedump on every format.
	for _, f := range []string{"raw.0", "profile.ute", "merged.ute", "trace.slog"} {
		out = runCmd(t, bin, "utedump", "-n", "3", filepath.Join(dir, f))
		if len(out) == 0 {
			t.Fatalf("utedump %s produced nothing", f)
		}
	}
	out = runCmd(t, bin, "utedump", "-frames", "-n", "2", merged)
	if !strings.Contains(out, "dir 0") {
		t.Fatalf("utedump -frames output:\n%s", out)
	}
	out = runCmd(t, bin, "utedump", "-validate", merged)
	if !strings.Contains(out, "valid (") {
		t.Fatalf("utedump -validate output:\n%s", out)
	}
}

func TestCLIWrapTolerant(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bin := buildCmds(t)
	dir := t.TempDir()
	runCmd(t, bin, "tracegen",
		"-out", dir, "-workload", "ring", "-nodes", "2", "-cpus", "1",
		"-iters", "200", "-bytes", "128", "-wrap", "-buffer", "8192")
	// Strict conversion must fail on the mid-stream trace...
	cmd := exec.Command(filepath.Join(bin, "uteconvert"), "-out-dir", dir,
		filepath.Join(dir, "raw.0"), filepath.Join(dir, "raw.1"))
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("strict conversion of wrapped trace succeeded:\n%s", out)
	}
	// ...and tolerant conversion must succeed and report skips.
	out := runCmd(t, bin, "uteconvert", "-tolerant", "-out-dir", dir,
		filepath.Join(dir, "raw.0"), filepath.Join(dir, "raw.1"))
	if !strings.Contains(out, "orphan events skipped") {
		t.Fatalf("tolerant conversion reported no skips:\n%s", out)
	}
	runCmd(t, bin, "utemerge", "-o", filepath.Join(dir, "merged.ute"),
		filepath.Join(dir, "trace.0.ute"), filepath.Join(dir, "trace.1.ute"))
}
