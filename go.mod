module tracefw

go 1.22
