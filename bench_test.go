package tracefw

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benchmarks for the design decisions DESIGN.md calls out. The
// full-size Table 1 sweep (up to 11.2M raw events) lives in
// cmd/experiments; the benchmarks here use sizes that keep `go test
// -bench=.` snappy while preserving the comparisons.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/cluster"
	"tracefw/internal/convert"
	"tracefw/internal/core"
	"tracefw/internal/events"
	"tracefw/internal/ingest"
	"tracefw/internal/interval"
	"tracefw/internal/merge"
	"tracefw/internal/mpisim"
	"tracefw/internal/profile"
	"tracefw/internal/render"
	"tracefw/internal/sched"
	"tracefw/internal/slog"
	"tracefw/internal/stats"
	"tracefw/internal/trace"
	"tracefw/internal/tracesvc"
	"tracefw/internal/workload"
)

// --- shared generators -------------------------------------------------

// stormRaws produces raw traces in the paper's Table 1 configuration:
// 4 MPI tasks (2 nodes × 2), 4 threads each.
func stormRaws(b *testing.B, iters int) [][]byte {
	return stormRawsN(b, 2, iters)
}

// stormRawsN generates the storm workload over a configurable node
// count (for the parallel convert/merge benchmarks).
func stormRawsN(b *testing.B, nodes, iters int) [][]byte {
	b.Helper()
	bufs := make([]*bytes.Buffer, nodes)
	writers := make([]io.Writer, nodes)
	for i := range bufs {
		bufs[i] = &bytes.Buffer{}
		writers[i] = bufs[i]
	}
	w, err := mpisim.New(mpisim.Config{
		Cluster: cluster.Config{
			Nodes: nodes, CPUsPerNode: 4, Seed: 99,
			TraceOpts: trace.Options{Enabled: events.MaskAll},
		},
		TasksPerNode: 2,
	}, writers)
	if err != nil {
		b.Fatal(err)
	}
	w.Start(workload.Storm{Iters: iters, Threads: 3}.Main())
	if _, err := w.Run(); err != nil {
		b.Fatal(err)
	}
	raws := make([][]byte, nodes)
	for i, buf := range bufs {
		raws[i] = buf.Bytes()
	}
	return raws
}

func rawEventCount(b *testing.B, raws [][]byte) int64 {
	b.Helper()
	var n int64
	for _, raw := range raws {
		rd, err := trace.NewReader(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := rd.Next(); errors.Is(err, io.EOF) {
				break
			} else if err != nil {
				b.Fatal(err)
			}
			n++
		}
	}
	return n
}

func convertedFiles(b *testing.B, raws [][]byte) []*interval.File {
	b.Helper()
	outs, _, err := convert.ConvertBuffers(raws, convert.Options{})
	if err != nil {
		b.Fatal(err)
	}
	files := make([]*interval.File, len(outs))
	for i, sb := range outs {
		if files[i], err = interval.ReadHeader(sb); err != nil {
			b.Fatal(err)
		}
	}
	return files
}

// --- Table 1: utility speed -------------------------------------------

func benchConvertPerEvent(b *testing.B, iters int) {
	raws := stormRaws(b, iters)
	nev := rawEventCount(b, raws)
	runtime.GC() // drop the generator's garbage; measure the utility
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Parallel: 1 keeps this the sequential per-event cost of Table 1;
		// BenchmarkConvertParallel measures the worker-pool speedup.
		if _, _, err := convert.ConvertBuffers(raws, convert.Options{Parallel: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(nev), "ns/event")
}

func BenchmarkConvertPerEventSmall(b *testing.B)  { benchConvertPerEvent(b, 1000) }
func BenchmarkConvertPerEventMedium(b *testing.B) { benchConvertPerEvent(b, 4000) }
func BenchmarkConvertPerEventLarge(b *testing.B)  { benchConvertPerEvent(b, 16000) }

func benchSlogmergePerEvent(b *testing.B, iters int) {
	raws := stormRaws(b, iters)
	nev := rawEventCount(b, raws)
	runtime.GC() // drop the generator's garbage; measure the utility
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		files := convertedFiles(b, raws)
		runtime.GC()
		b.StartTimer()
		dst := interval.NewSeekBuffer()
		if _, _, err := slog.Slogmerge(files, dst, merge.Options{}, slog.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(nev), "ns/event")
}

func BenchmarkSlogmergePerEventSmall(b *testing.B)  { benchSlogmergePerEvent(b, 1000) }
func BenchmarkSlogmergePerEventMedium(b *testing.B) { benchSlogmergePerEvent(b, 4000) }
func BenchmarkSlogmergePerEventLarge(b *testing.B)  { benchSlogmergePerEvent(b, 16000) }

// --- §2.1: cost of cutting a trace record -------------------------------

func BenchmarkCutTraceRecord(b *testing.B) {
	f, err := trace.NewFacility(trace.Options{Enabled: events.MaskAll, BufferSize: 1 << 22}, 0, 1, io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	rec := &trace.Record{Type: events.EvMPISend, Edge: events.Entry, TID: 1, Args: []uint64{1, 2, 3, 4, 5, 6}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Time = clock.Time(i)
		f.Cut(rec)
	}
}

// --- Figure 1: clock discrepancy series ---------------------------------

func BenchmarkFig1ClockDiscrepancy(b *testing.B) {
	drifts := []float64{0, 2.5e-5, -3.5e-5, 6e-5}
	for i := 0; i < b.N; i++ {
		s := clock.Figure1(drifts, 0, 140*clock.Second, clock.Second, 1)
		if s.MaxDivergence() == 0 {
			b.Fatal("no divergence")
		}
	}
}

// --- §2.2: ratio estimators ---------------------------------------------

func BenchmarkClockRatioEstimators(b *testing.B) {
	c := clock.NewLocal(clock.Second, 8e-5, 500, clock.Microsecond, 3)
	var pairs []clock.Pair
	for i := 0; i <= 140; i++ {
		pairs = append(pairs, clock.SamplePair(c, clock.Time(i)*clock.Second, 0))
	}
	b.Run("rms", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			clock.RMSRatio(pairs)
		}
	})
	b.Run("lastpair", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			clock.LastPairRatio(pairs)
		}
	})
	b.Run("piecewise-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			clock.NewPiecewiseAdjuster(pairs)
		}
	})
	b.Run("filter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			clock.FilterOutliers(pairs, 1e-3)
		}
	})
}

// --- Figures 6-9 --------------------------------------------------------

func flashRunB(b *testing.B) *core.Run {
	b.Helper()
	run, err := core.Execute(core.Config{
		Nodes: 4, CPUsPerNode: 4, TasksPerNode: 1, Seed: 11,
		Convert: interval.WriterOptions{FrameBytes: 16 << 10},
		Slog:    slog.Options{FrameBytes: 16 << 10},
	}, workload.Flash{Iters: 20, RefineEach: 5}.Main())
	if err != nil {
		b.Fatal(err)
	}
	return run
}

func sppmRunB(b *testing.B) *core.Run {
	b.Helper()
	run, err := core.Execute(core.Config{
		Nodes: 4, CPUsPerNode: 8, TasksPerNode: 1, Seed: 12,
		Affinity: sched.AffinityLowestFree,
	}, workload.SPPM{Iters: 8, ThreadsPerTask: 4}.Main())
	if err != nil {
		b.Fatal(err)
	}
	return run
}

func BenchmarkFig6StatsTable(b *testing.B) {
	run := flashRunB(b)
	defer run.Close()
	prog := stats.Predefined(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := stats.Generate(prog, []*interval.File{run.Merged})
		if err != nil {
			b.Fatal(err)
		}
		if len(tables[0].Rows) == 0 {
			b.Fatal("empty Figure 6 table")
		}
	}
}

func BenchmarkFig7PreviewAndFrameFetch(b *testing.B) {
	run := flashRunB(b)
	defer run.Close()
	sf := run.Slog
	mid := (sf.TStart + sf.TEnd) / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if svg := render.PreviewSVG(sf.Preview); len(svg) == 0 {
			b.Fatal("empty preview")
		}
		fi, ok := sf.FrameAt(mid)
		if !ok {
			b.Fatal("no frame")
		}
		if _, err := sf.ReadFrame(fi); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8ThreadActivityView(b *testing.B) {
	run := sppmRunB(b)
	defer run.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := run.View(render.ThreadActivity, render.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(d.SVG()) == 0 {
			b.Fatal("empty svg")
		}
	}
}

func BenchmarkFig9ProcessorActivityView(b *testing.B) {
	run := sppmRunB(b)
	defer run.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := run.View(render.ProcessorActivity, render.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(d.SVG()) == 0 {
			b.Fatal("empty svg")
		}
	}
}

// --- §4: frame-fetch scalability ----------------------------------------

func BenchmarkFrameFetchScalability(b *testing.B) {
	for _, iters := range []int{5, 20, 80} {
		run, err := core.Execute(core.Config{
			Nodes: 4, CPUsPerNode: 4, TasksPerNode: 1, Seed: 11,
			Convert: interval.WriterOptions{FrameBytes: 16 << 10},
			Slog:    slog.Options{FrameBytes: 16 << 10},
		}, workload.Flash{Iters: iters, RefineEach: 5}.Main())
		if err != nil {
			b.Fatal(err)
		}
		sf := run.Slog
		mid := (sf.TStart + sf.TEnd) / 2
		b.Run(sizeName(iters), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fi, ok := sf.FrameAt(mid)
				if !ok {
					b.Fatal("no frame")
				}
				if _, err := sf.ReadFrame(fi); err != nil {
					b.Fatal(err)
				}
			}
		})
		run.Close()
	}
}

func sizeName(iters int) string {
	switch iters {
	case 5:
		return "small"
	case 20:
		return "medium"
	default:
		return "large"
	}
}

// --- ablations -----------------------------------------------------------

// BenchmarkMergeLoserTreeVsLinear compares the paper's balanced-tree
// k-way merge against a naive linear minimum scan, with many inputs so
// the O(log k) vs O(k) difference shows.
func BenchmarkMergeLoserTreeVsLinear(b *testing.B) {
	const nodes = 16
	bufs := make([]*bytes.Buffer, nodes)
	writers := make([]io.Writer, nodes)
	for i := range bufs {
		bufs[i] = &bytes.Buffer{}
		writers[i] = bufs[i]
	}
	w, err := mpisim.New(mpisim.Config{
		Cluster: cluster.Config{
			Nodes: nodes, CPUsPerNode: 2, Seed: 5,
			TraceOpts: trace.Options{Enabled: events.MaskAll},
		},
		TasksPerNode: 1,
	}, writers)
	if err != nil {
		b.Fatal(err)
	}
	w.Start(workload.Storm{Iters: 400, Threads: 1}.Main())
	if _, err := w.Run(); err != nil {
		b.Fatal(err)
	}
	raws := make([][]byte, nodes)
	for i, buf := range bufs {
		raws[i] = buf.Bytes()
	}
	for _, variant := range []struct {
		name   string
		linear bool
	}{{"losertree", false}, {"linear", true}} {
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				files := convertedFiles(b, raws)
				b.StartTimer()
				sb := interval.NewSeekBuffer()
				if _, err := merge.Merge(files, sb, merge.Options{Linear: variant.linear}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSeekFrameDirsVsScan compares locating a late time point via
// the frame directories against scanning all records — the reason the
// format has frames and directories at all.
func BenchmarkSeekFrameDirsVsScan(b *testing.B) {
	raws := stormRaws(b, 8000)
	files := convertedFiles(b, raws)
	sb := interval.NewSeekBuffer()
	if _, err := merge.Merge(files, sb, merge.Options{Writer: interval.WriterOptions{FrameBytes: 16 << 10}}); err != nil {
		b.Fatal(err)
	}
	mf, err := interval.ReadHeader(sb)
	if err != nil {
		b.Fatal(err)
	}
	_, last, _, err := mf.Stats()
	if err != nil {
		b.Fatal(err)
	}
	target := last - clock.Millisecond
	b.Run("framedirs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fe, ok, err := mf.FrameContaining(target)
			if err != nil || !ok {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
			if _, err := mf.FrameRecords(fe); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fullscan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sc := mf.Scan()
			found := false
			for {
				r, err := sc.NextRecord()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				if r.End() >= target {
					found = true
					break
				}
			}
			if !found {
				b.Fatal("target not found")
			}
		}
	})
}

// BenchmarkMergePseudoIntervals measures the cost of the paper's §3.3
// pseudo-interval planting.
func BenchmarkMergePseudoIntervals(b *testing.B) {
	raws := stormRaws(b, 4000)
	for _, variant := range []struct {
		name     string
		noPseudo bool
	}{{"with-pseudo", false}, {"no-pseudo", true}} {
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				files := convertedFiles(b, raws)
				b.StartTimer()
				sb := interval.NewSeekBuffer()
				opts := merge.Options{
					Writer:   interval.WriterOptions{FrameBytes: 8 << 10},
					NoPseudo: variant.noPseudo,
				}
				if _, err := merge.Merge(files, sb, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEstimatorAdjustment measures timestamp adjustment throughput
// per estimator (every record passes through Adjuster.Global twice).
func BenchmarkEstimatorAdjustment(b *testing.B) {
	raws := stormRaws(b, 4000)
	for _, est := range []merge.Estimator{merge.EstimatorRMS, merge.EstimatorPiecewise, merge.EstimatorNone} {
		b.Run(est.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				files := convertedFiles(b, raws)
				b.StartTimer()
				sb := interval.NewSeekBuffer()
				if _, err := merge.Merge(files, sb, merge.Options{Estimator: est}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEndTimeOrderingAblation quantifies the paper's end-time
// ordering design decision (§3.1): because every input interval file is
// already sorted by end time, the merge is a streaming k-way pass. The
// ablation pretends the inputs were unordered and performs the naive
// alternative — load everything, sort globally, rewrite — which costs
// O(n log n) comparisons and peak memory proportional to the whole trace
// instead of one record per input.
func BenchmarkEndTimeOrderingAblation(b *testing.B) {
	raws := stormRaws(b, 8000)
	b.Run("streaming-merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			files := convertedFiles(b, raws)
			b.StartTimer()
			sb := interval.NewSeekBuffer()
			if _, err := merge.Merge(files, sb, merge.Options{NoPseudo: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("global-sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			files := convertedFiles(b, raws)
			b.StartTimer()
			// Naive alternative: slurp every record, sort by end time,
			// write one output file.
			var all []interval.Record
			for fi, f := range files {
				pairs, err := merge.ExtractPairs(f)
				if err != nil {
					b.Fatal(err)
				}
				adj := clock.NewRatioAdjuster(pairs)
				recs, err := f.Scan().All()
				if err != nil {
					b.Fatal(err)
				}
				_ = fi
				for _, r := range recs {
					if r.Type == events.EvGlobalClock {
						continue
					}
					end := adj.Global(r.End())
					r.Start = adj.Global(r.Start)
					r.Dura = end - r.Start
					all = append(all, r)
				}
			}
			sort.SliceStable(all, func(x, y int) bool { return all[x].End() < all[y].End() })
			sb := interval.NewSeekBuffer()
			w, err := interval.NewWriter(sb, interval.Header{
				ProfileVersion: files[0].Header.ProfileVersion,
				Markers:        map[uint64]string{},
			}, interval.WriterOptions{})
			if err != nil {
				b.Fatal(err)
			}
			for j := range all {
				if err := w.Add(&all[j]); err != nil {
					b.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkConvertParallel measures the worker-pool convert over a
// 4-node run at widths 1, 2, and 4. The outputs are byte-identical at
// every width; on a multi-core host the wider variants approach a
// speedup of min(width, GOMAXPROCS), while on a single-CPU host all
// variants degenerate to the sequential cost.
func BenchmarkConvertParallel(b *testing.B) {
	raws := stormRawsN(b, 4, 2000)
	for _, width := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("j%d", width), func(b *testing.B) {
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := convert.ConvertBuffers(raws, convert.Options{Parallel: width}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMergeReadAhead compares the synchronous merge against the
// read-ahead pipeline over a 4-node run. The read-ahead variant moves
// frame decode off the merge goroutine; its benefit requires spare
// cores.
func BenchmarkMergeReadAhead(b *testing.B) {
	raws := stormRawsN(b, 4, 2000)
	for _, variant := range []struct {
		name  string
		width int
	}{{"sync", 1}, {"readahead", 4}} {
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				files := convertedFiles(b, raws)
				runtime.GC()
				b.StartTimer()
				sb := interval.NewSeekBuffer()
				if _, err := merge.Merge(files, sb, merge.Options{Parallel: variant.width}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIntervalWriterThroughput measures raw record encode+frame
// throughput of the interval writer (records/op reported via ns/record).
func BenchmarkIntervalWriterThroughput(b *testing.B) {
	rec := interval.Record{
		Type:   events.EvMPISend,
		Bebits: profile.Complete,
		Dura:   1000,
		Extra:  []uint64{1, 2, 3, 4, 5, 6},
	}
	hdr := interval.Header{ProfileVersion: profile.StdVersion, Markers: map[uint64]string{}}
	b.ReportAllocs()
	b.ResetTimer()
	sb := interval.NewSeekBuffer()
	w, err := interval.NewWriter(sb, hdr, interval.WriterOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rec.Start = clock.Time(i)
		if err := w.Add(&rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkIntervalScanThroughput measures sequential record decode
// throughput through the Scanner.
func BenchmarkIntervalScanThroughput(b *testing.B) {
	sb := interval.NewSeekBuffer()
	hdr := interval.Header{ProfileVersion: profile.StdVersion, Markers: map[uint64]string{}}
	w, err := interval.NewWriter(sb, hdr, interval.WriterOptions{})
	if err != nil {
		b.Fatal(err)
	}
	const n = 100000
	rec := interval.Record{Type: events.EvMPISend, Bebits: profile.Complete, Dura: 10, Extra: []uint64{1, 2, 3, 4, 5, 6}}
	for i := 0; i < n; i++ {
		rec.Start = clock.Time(i)
		if err := w.Add(&rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	f, err := interval.ReadHeader(sb)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := f.Scan()
		count := 0
		for {
			_, err := sc.NextRecord()
			if err != nil {
				break
			}
			count++
		}
		if count != n {
			b.Fatalf("scanned %d records", count)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/record")
}

// BenchmarkIntervalScanInto measures the allocation-free decode path
// (NextRecordInto with a reused scratch record) against the same file as
// BenchmarkIntervalScanThroughput.
func BenchmarkIntervalScanInto(b *testing.B) {
	sb := interval.NewSeekBuffer()
	hdr := interval.Header{ProfileVersion: profile.StdVersion, Markers: map[uint64]string{}}
	w, err := interval.NewWriter(sb, hdr, interval.WriterOptions{})
	if err != nil {
		b.Fatal(err)
	}
	const n = 100000
	rec := interval.Record{Type: events.EvMPISend, Bebits: profile.Complete, Dura: 10, Extra: []uint64{1, 2, 3, 4, 5, 6}}
	for i := 0; i < n; i++ {
		rec.Start = clock.Time(i)
		if err := w.Add(&rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	f, err := interval.ReadHeader(sb)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := f.Scan()
		var r interval.Record
		count := 0
		for sc.NextRecordInto(&r) == nil {
			count++
		}
		if count != n {
			b.Fatalf("scanned %d records", count)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/record")
}

// --- header v4 compact encoding ------------------------------------------

// benchIntervalRecords builds the record mix the v3/v4 comparison
// benchmarks share: MPI sends with six extras, increasing start times.
func benchIntervalRecords(n int) []interval.Record {
	recs := make([]interval.Record, n)
	for i := range recs {
		recs[i] = interval.Record{
			Type: events.EvMPISend, Bebits: profile.Complete,
			Start: clock.Time(i) * 100, Dura: 10,
			CPU: uint16(i % 4), Node: uint16(i % 2), Thread: uint16(i % 8),
			Extra: []uint64{1, 2, 3, 4, 5, 6},
		}
	}
	return recs
}

func writeBenchInterval(b *testing.B, version uint32, recs []interval.Record) *interval.SeekBuffer {
	b.Helper()
	hdr := interval.Header{ProfileVersion: profile.StdVersion, HeaderVersion: version, Markers: map[uint64]string{}}
	sb := interval.NewSeekBuffer()
	w, err := interval.NewWriter(sb, hdr, interval.WriterOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for i := range recs {
		if err := w.Add(&recs[i]); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	return sb
}

// BenchmarkIntervalEncodeV4 compares write throughput and on-disk size
// between the fixed-width v3 frames and the v4 compact encoding
// (B/record is the whole-file size divided by the record count).
func BenchmarkIntervalEncodeV4(b *testing.B) {
	const n = 20000
	recs := benchIntervalRecords(n)
	for _, v := range []uint32{3, 4} {
		b.Run(fmt.Sprintf("v%d", v), func(b *testing.B) {
			b.ReportAllocs()
			var size int
			for i := 0; i < b.N; i++ {
				size = len(writeBenchInterval(b, v, recs).Bytes())
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/record")
			b.ReportMetric(float64(size)/n, "B/record")
		})
	}
}

// BenchmarkIntervalScanV4 compares sequential decode throughput
// (NextRecordInto) over the same records at v3 and v4 — the acceptance
// bar for the compact encoding is scan speed no worse than v3.
func BenchmarkIntervalScanV4(b *testing.B) {
	const n = 100000
	recs := benchIntervalRecords(n)
	for _, v := range []uint32{3, 4} {
		b.Run(fmt.Sprintf("v%d", v), func(b *testing.B) {
			f, err := interval.ReadHeader(writeBenchInterval(b, v, recs))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc := f.Scan()
				var r interval.Record
				count := 0
				for sc.NextRecordInto(&r) == nil {
					count++
				}
				if count != n {
					b.Fatalf("scanned %d records", count)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/record")
		})
	}
}

// --- indexed analysis backend: window seeks + parallel stats -------------

// windowBenchFile merges a 4-node run with small frames so the window
// benchmarks have many frames and directories to skip.
func windowBenchFile(b *testing.B) *interval.File {
	b.Helper()
	raws := stormRawsN(b, 4, 8000)
	files := convertedFiles(b, raws)
	sb := interval.NewSeekBuffer()
	if _, err := merge.Merge(files, sb, merge.Options{Writer: interval.WriterOptions{FrameBytes: 8 << 10}}); err != nil {
		b.Fatal(err)
	}
	mf, err := interval.ReadHeader(sb)
	if err != nil {
		b.Fatal(err)
	}
	return mf
}

// BenchmarkStatsWindow compares a table generated over a narrow (5%)
// time window through the indexed window path — only frames overlapping
// the window decode, and whole directories skip on their stored bounds —
// against the same table paying for the full scan. frames/op reports
// how many frame payloads each variant actually decoded.
func BenchmarkStatsWindow(b *testing.B) {
	mf := windowBenchFile(b)
	first, last, _, err := mf.Stats()
	if err != nil {
		b.Fatal(err)
	}
	span := last - first
	lo, hi := first+span/2, first+span/2+span/20
	prog := `table name=c x=("node", node) y=("n", dura, count)`
	for _, v := range []struct {
		name string
		opts stats.Options
	}{
		{"window", stats.Options{Window: true, Lo: lo, Hi: hi, Parallel: 1}},
		{"fullscan", stats.Options{Parallel: 1}},
	} {
		b.Run(v.name, func(b *testing.B) {
			runtime.GC()
			b.ResetTimer()
			start := mf.DecodedFrames()
			for i := 0; i < b.N; i++ {
				if _, err := stats.GenerateOpts(prog, []*interval.File{mf}, v.opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(mf.DecodedFrames()-start)/float64(b.N), "frames/op")
		})
	}
}

// BenchmarkStatsParallel runs the predefined tables at several frame-
// decode worker counts. The output is byte-identical at every width
// (asserted by the stats tests), so this measures the engine's
// scheduling cost and, on multi-core hosts, its speedup; on a 1-CPU
// host all widths degenerate to the sequential cost.
func BenchmarkStatsParallel(b *testing.B) {
	mf := windowBenchFile(b)
	prog := stats.Predefined(50)
	for _, width := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("j%d", width), func(b *testing.B) {
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tables, err := stats.GenerateOpts(prog, []*interval.File{mf}, stats.Options{Parallel: width})
				if err != nil {
					b.Fatal(err)
				}
				if len(tables[0].Rows) == 0 {
					b.Fatal("empty table")
				}
			}
		})
	}
}

// BenchmarkStatsColumnar is the columnar-engine headline: the same
// multi-table program through the record-at-a-time evaluator (scalar),
// through the vectorized kernels decoding v4 frames straight into
// columnar batches (columnar-cold), and through the kernels fed from a
// decoded-record cache hook the way the trace service runs them
// (columnar-warm). Outputs are byte-identical across all three
// (asserted by internal/stats tests); only the evaluation cost differs.
func BenchmarkStatsColumnar(b *testing.B) {
	mf := windowBenchFile(b)
	prog := `table name=busy x=("state", state) y=("t", dura, sum) y=("n", dura, count)
table name=bynode x=("node", node) x=("bin", bin(start, 50)) y=("t", dura, sum)
table name=sends condition=(msgSizeSent > 0) x=("node", node) y=("bytes", msgSizeSent, sum)`
	run := func(b *testing.B, eng stats.Engine) {
		runtime.GC()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tables, err := stats.GenerateOpts(prog, []*interval.File{mf}, stats.Options{Parallel: 1, Engine: eng})
			if err != nil {
				b.Fatal(err)
			}
			if len(tables[0].Rows) == 0 {
				b.Fatal("empty table")
			}
		}
	}
	b.Run("scalar", func(b *testing.B) { run(b, stats.EngineScalar) })
	b.Run("columnar-cold", func(b *testing.B) { run(b, stats.EngineColumnar) })
	b.Run("columnar-warm", func(b *testing.B) {
		fes, err := mf.Frames()
		if err != nil {
			b.Fatal(err)
		}
		cache := make(map[int64][]interval.Record, len(fes))
		for _, fe := range fes {
			recs, err := mf.DecodeFrameDirect(fe)
			if err != nil {
				b.Fatal(err)
			}
			cache[fe.Offset] = recs
		}
		mf.SetFrameDecoder(func(_ *interval.File, fe interval.FrameEntry) ([]interval.Record, error) {
			return cache[fe.Offset], nil
		})
		defer mf.SetFrameDecoder(nil)
		run(b, stats.EngineColumnar)
	})
}

// --- trace query service (utetraced's serving layer) -------------------

// serveBench builds a service with one registered on-disk trace and
// returns it with the request URL of a half-run window query in count
// mode (all decode, no JSON bodies — the purest cache measurement).
func serveBench(b *testing.B, n int) (*tracesvc.Service, *tracesvc.Trace, string) {
	b.Helper()
	path := filepath.Join(b.TempDir(), "bench.ute")
	writeIntervalFile(b, path, interval.CurrentHeaderVersion, n)
	svc := tracesvc.New(tracesvc.Config{})
	tr, err := svc.Registry().Open(path)
	if err != nil {
		b.Fatal(err)
	}
	start, end, _ := tr.Bounds()
	lo, hi := start.Seconds(), (start + (end-start)/2).Seconds()
	url := fmt.Sprintf("/v1/traces/%s/records?window=%.9f:%.9f&count=1", tr.ID, lo, hi)
	return svc, tr, url
}

func serveOnce(b *testing.B, svc *tracesvc.Service, url string) {
	b.Helper()
	w := httptest.NewRecorder()
	svc.Handler().ServeHTTP(w, httptest.NewRequest("GET", url, nil))
	if w.Code != 200 {
		b.Fatalf("GET %s: %d %s", url, w.Code, w.Body)
	}
}

// BenchmarkServeWindowCold measures the window query with the cache
// flushed before every request: each iteration re-reads and re-decodes
// every overlapping frame.
func BenchmarkServeWindowCold(b *testing.B) {
	svc, tr, url := serveBench(b, 20000)
	defer svc.Close()
	runtime.GC()
	b.ResetTimer()
	start := tr.File().DecodedFrames()
	for i := 0; i < b.N; i++ {
		svc.Cache().Flush()
		serveOnce(b, svc, url)
	}
	b.ReportMetric(float64(tr.File().DecodedFrames()-start)/float64(b.N), "frames/op")
}

// BenchmarkServeWindowCached is the same query against a warm cache:
// the acceptance bar is ≥5x faster than cold with zero frames decoded
// per operation (the frames/op metric must print 0).
func BenchmarkServeWindowCached(b *testing.B) {
	svc, tr, url := serveBench(b, 20000)
	defer svc.Close()
	serveOnce(b, svc, url) // warm the cache
	runtime.GC()
	b.ResetTimer()
	start := tr.File().DecodedFrames()
	for i := 0; i < b.N; i++ {
		serveOnce(b, svc, url)
	}
	decoded := tr.File().DecodedFrames() - start
	b.ReportMetric(float64(decoded)/float64(b.N), "frames/op")
	if decoded != 0 {
		b.Fatalf("warm queries decoded %d frames", decoded)
	}
}

// --- summary-pyramid preview (the O(pixels) pan/zoom path) -------------

// servePreviewBench registers a trace whose .pyr sidecar exists on disk
// (so Open attaches it) and returns a preview URL builder for a window
// aligned to base-cell boundaries with bins dividing the cell span —
// the geometry under which the pyramid engine needs zero frame decodes.
func servePreviewBench(b *testing.B, n int) (*tracesvc.Service, *tracesvc.Trace, func(engine string) string) {
	b.Helper()
	path := filepath.Join(b.TempDir(), "bench.ute")
	writeIntervalFile(b, path, interval.CurrentHeaderVersion, n)
	if _, err := interval.BuildPyramidSidecar(path, interval.PyramidOptions{}); err != nil {
		b.Fatal(err)
	}
	svc := tracesvc.New(tracesvc.Config{})
	tr, err := svc.Registry().Open(path)
	if err != nil {
		b.Fatal(err)
	}
	p := tr.File().Pyramid()
	if p == nil || len(p.Levels) == 0 {
		b.Fatal("no pyramid attached")
	}
	base := p.Levels[0]
	bins := 16
	cells := len(base.Cells) / bins * bins
	if cells == 0 {
		bins, cells = 1, len(base.Cells)
	}
	lo := clock.Time(base.First) * base.Width
	hi := lo + clock.Time(cells)*base.Width
	window := fmt.Sprintf("%.9f:%.9f", lo.Seconds(), hi.Seconds())
	// The URL carries the window in seconds; the aligned bounds must
	// survive the decimal round-trip, or the zero-decode assertion
	// below would silently measure edge remainders instead.
	if plo, phi, err := clock.ParseWindow(window); err != nil || plo != lo || phi != hi {
		b.Fatalf("window %q round-trips to [%v .. %v], want [%v .. %v]", window, plo, phi, lo, hi)
	}
	urlFor := func(engine string) string {
		return fmt.Sprintf("/v1/traces/%s/preview.svg?view=preview&bins=%d&window=%s&engine=%s",
			tr.ID, bins, window, engine)
	}
	return svc, tr, urlFor
}

// BenchmarkServePreview compares the preview endpoint's engines on the
// same aligned window: cold scan (decoded-frame cache flushed before
// every request), warm scan (all frames resident), and pyramid — which
// answers from O(bins) stored cells and fails the benchmark if it
// decodes a single frame, cache or no cache.
func BenchmarkServePreview(b *testing.B) {
	run := func(b *testing.B, engine string, flush, wantZero bool) {
		svc, tr, urlFor := servePreviewBench(b, 20000)
		defer svc.Close()
		url := urlFor(engine)
		serveOnce(b, svc, url)
		if flush {
			svc.Cache().Flush()
		}
		runtime.GC()
		b.ResetTimer()
		start := tr.File().DecodedFrames()
		for i := 0; i < b.N; i++ {
			if flush {
				svc.Cache().Flush()
			}
			serveOnce(b, svc, url)
		}
		decoded := tr.File().DecodedFrames() - start
		b.ReportMetric(float64(decoded)/float64(b.N), "frames/op")
		if wantZero && decoded != 0 {
			b.Fatalf("pyramid preview decoded %d frames", decoded)
		}
	}
	b.Run("cold", func(b *testing.B) { run(b, "scan", true, false) })
	b.Run("scan", func(b *testing.B) { run(b, "scan", false, false) })
	b.Run("pyramid", func(b *testing.B) { run(b, "pyramid", true, true) })
}

// BenchmarkPreviewZoom drives a zoom ladder — ten nested windows, each
// halving the span around the run's midpoint — through BuildPreview:
// the interactive pan/zoom pattern whose per-frame cost the pyramid
// removes. The windows are deliberately not cell-aligned, so the
// pyramid engine pays only the O(1) edge-remainder decodes per window
// while the scan engine re-decodes everything it overlaps.
func BenchmarkPreviewZoom(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.ute")
	writeIntervalFile(b, path, interval.CurrentHeaderVersion, 20000)
	if _, err := interval.BuildPyramidSidecar(path, interval.PyramidOptions{}); err != nil {
		b.Fatal(err)
	}
	mf, err := interval.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer mf.Close()
	fs, fe, _, err := mf.Stats()
	if err != nil {
		b.Fatal(err)
	}
	mid := fs + (fe-fs)/2
	var windows [][2]clock.Time
	for z := 1; z <= 10; z++ {
		half := (fe - fs) >> uint(z+1)
		windows = append(windows, [2]clock.Time{mid - half, mid + half})
	}
	run := func(b *testing.B, eng interval.SummaryEngine) {
		runtime.GC()
		b.ResetTimer()
		frames := 0
		for i := 0; i < b.N; i++ {
			for _, w := range windows {
				res, err := render.BuildPreview(mf, render.PreviewOptions{
					Bins: 64, T0: w[0], T1: w[1], Engine: eng,
				})
				if err != nil {
					b.Fatal(err)
				}
				frames += res.FramesDecoded
			}
		}
		b.ReportMetric(float64(frames)/float64(b.N), "frames/op")
	}
	b.Run("pyramid", func(b *testing.B) { run(b, interval.SummaryPyramid) })
	b.Run("scan", func(b *testing.B) { run(b, interval.SummaryScan) })
}

// --- streaming ingest (the live write path) ----------------------------

// ingestPreambleCut returns the end offset of the last thread-info or
// marker-define record in a raw stream: everything up to it is the
// node's batch-0 preamble per the ingest contract.
func ingestPreambleCut(b *testing.B, raw []byte) int {
	b.Helper()
	off := convert.RawHeaderSize
	cut := off
	for off < len(raw) {
		rec, n, err := trace.Decode(raw[off:])
		if err != nil {
			b.Fatalf("raw trace undecodable at %d: %v", off, err)
		}
		off += n
		if rec.Type == events.EvThreadInfo || rec.Type == events.EvMarkerDefine {
			cut = off
		}
	}
	return cut
}

// benchIngest drives complete ingest sessions end to end — per-node raw
// streams posted as sequence-numbered batches, incrementally converted,
// clock-adjusted, live-merged, and sealed to an on-disk v4 file — and
// reports raw events ingested per second.
func benchIngest(b *testing.B, nodes int) {
	raws := stormRawsN(b, nodes, 120)
	ev := rawEventCount(b, raws)
	var total int64
	batches := make([][][]byte, nodes)
	for n, raw := range raws {
		total += int64(len(raw))
		cut := ingestPreambleCut(b, raw)
		bs := [][]byte{raw[:cut]}
		const chunk = 64 << 10
		for rest := raw[cut:]; len(rest) > 0; {
			c := chunk
			if c > len(rest) {
				c = len(rest)
			}
			bs, rest = append(bs, rest[:c]), rest[c:]
		}
		batches[n] = bs
	}
	dir := b.TempDir()
	b.SetBytes(total)
	runtime.GC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := ingest.NewManager(ingest.Config{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		sess, err := m.Begin(fmt.Sprintf("bench-%d", i), nodes, interval.WriterOptions{})
		if err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, nodes)
		for n := range batches {
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				for seq, batch := range batches[n] {
					last := seq == len(batches[n])-1
					if err := sess.Batch(n, uint64(seq), last, batch); err != nil {
						errs[n] = err
						return
					}
				}
			}(n)
		}
		wg.Wait()
		if err := sess.Wait(); err != nil {
			b.Fatal(err)
		}
		for n, err := range errs {
			if err != nil {
				b.Fatalf("node %d: %v", n, err)
			}
		}
	}
	b.ReportMetric(float64(ev)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkIngest measures the streaming write path at one node (pure
// pipeline cost, no merge contention) and at four (the live k-way merge
// fed by concurrent posters).
func BenchmarkIngest(b *testing.B) {
	b.Run("nodes1", func(b *testing.B) { benchIngest(b, 1) })
	b.Run("nodes4", func(b *testing.B) { benchIngest(b, 4) })
}
