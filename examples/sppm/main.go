// sppm reproduces the paper's Figures 8 and 9: the ASCI sPPM-like
// benchmark on 4 nodes of 8-way SMPs with four threads per MPI task (one
// making MPI calls, one idle), rendered as a thread-activity view and a
// processor-activity view. SVGs are written to the working directory and
// compact ASCII views are printed.
package main

import (
	"fmt"
	"log"
	"os"

	"tracefw/internal/core"
	"tracefw/internal/render"
	"tracefw/internal/sched"
	"tracefw/internal/workload"
)

func main() {
	run, err := core.Execute(core.Config{
		Nodes:        4,
		CPUsPerNode:  8,
		TasksPerNode: 1,
		Seed:         12,
		Affinity:     sched.AffinityLowestFree,
	}, workload.SPPM{Iters: 8, ThreadsPerTask: 4}.Main())
	if err != nil {
		log.Fatal(err)
	}
	defer run.Close()

	arrows, err := run.Arrows()
	if err != nil {
		log.Fatal(err)
	}

	threadView, err := run.View(render.ThreadActivity, render.Options{Arrows: arrows})
	if err != nil {
		log.Fatal(err)
	}
	cpuView, err := run.View(render.ProcessorActivity, render.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("sppm_thread_activity.svg", []byte(threadView.SVG()), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("sppm_processor_activity.svg", []byte(cpuView.SVG()), 0o644); err != nil {
		log.Fatal(err)
	}

	fmt.Println(threadView.ASCII(100))
	fmt.Println(cpuView.ASCII(100))
	fmt.Println("wrote sppm_thread_activity.svg and sppm_processor_activity.svg")

	// The observations the paper reads off these views:
	busy := threadView.BusyFraction()
	idle := 0
	for _, f := range busy {
		if f < 0.05 {
			idle++
		}
	}
	fmt.Printf("threads: %d timelines, %d idle (the paper notes one idle thread per task)\n",
		len(threadView.Rows), idle)
	tp, err := run.View(render.ThreadProcessor, render.Options{})
	if err != nil {
		log.Fatal(err)
	}
	moved := 0
	for _, n := range tp.DistinctKeysPerRow() {
		if n > 1 {
			moved++
		}
	}
	fmt.Printf("threads that migrated between CPUs: %d (the paper notes MPI threads jumping CPUs)\n", moved)
}
