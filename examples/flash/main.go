// flash reproduces the paper's Figure 7: the FLASH-like adaptive-mesh
// run, its SLOG preview (the whole-run summary the viewer shows first),
// and a fast frame fetch at a user-chosen instant followed by the
// detailed view of that frame.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"tracefw/internal/core"
	"tracefw/internal/interval"
	"tracefw/internal/render"
	"tracefw/internal/slog"
	"tracefw/internal/workload"
)

func main() {
	run, err := core.Execute(core.Config{
		Nodes:        4,
		CPUsPerNode:  4,
		TasksPerNode: 1,
		Seed:         11,
		Convert:      interval.WriterOptions{FrameBytes: 16 << 10},
		Slog:         slog.Options{FrameBytes: 16 << 10},
	}, workload.Flash{Iters: 30, RefineEach: 5}.Main())
	if err != nil {
		log.Fatal(err)
	}
	defer run.Close()

	sf := run.Slog
	fmt.Printf("run spans [%v .. %v] across %d frames\n", sf.TStart, sf.TEnd, len(sf.Index))
	fmt.Println(render.PreviewASCII(sf.Preview, 70))
	if err := os.WriteFile("flash_preview.svg", []byte(render.PreviewSVG(sf.Preview)), 0o644); err != nil {
		log.Fatal(err)
	}

	// "The user has selected a time instant in this middle section which
	// causes the display of the data in the frame containing this
	// instant." — locate and fetch that frame, timing the access.
	instant := sf.TStart + (sf.TEnd-sf.TStart)/2
	start := time.Now()
	fi, ok := sf.FrameAt(instant)
	if !ok {
		log.Fatalf("no frame contains %v", instant)
	}
	fd, err := sf.ReadFrame(fi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frame %d fetched in %v: %d intervals, %d pseudo records, %d arrows\n",
		fi, time.Since(start), len(fd.Intervals), len(fd.Pseudo), len(fd.Arrows))

	// Pseudo records reconstruct the enclosing states (e.g. the Evolution
	// marker) even though their begin pieces live in earlier frames.
	for _, r := range fd.Pseudo {
		name := r.Type.Name()
		if id, ok := r.Field("marker"); ok {
			if s, ok := sf.Markers[id]; ok {
				name += " " + fmt.Sprintf("%q", s)
			}
		}
		fmt.Printf("  enclosing state at frame start: %s on n%d/t%d\n", name, r.Node, r.Thread)
	}

	fe := sf.Index[fi]
	d, err := run.View(render.ThreadActivity, render.Options{T0: fe.Start, T1: fe.End})
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("flash_frame.svg", []byte(d.SVG()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote flash_preview.svg and flash_frame.svg")
}
