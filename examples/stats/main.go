// stats reproduces the paper's Figure 6 and §3.2: generate the
// pre-defined statistics tables (including the per-node × 50-time-bin
// "interesting duration" table), run the paper's example program in the
// declarative table language, and render the statistics viewer's output.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"tracefw/internal/core"
	"tracefw/internal/render"
	"tracefw/internal/workload"
)

func main() {
	run, err := core.Execute(core.Config{
		Nodes:        4,
		CPUsPerNode:  4,
		TasksPerNode: 1,
		Seed:         11,
	}, workload.Flash{Iters: 25, RefineEach: 5}.Main())
	if err != nil {
		log.Fatal(err)
	}
	defer run.Close()

	// The paper's example program (§3.2).
	tables, err := run.Stats(`table name=sample condition=(start < 2)
		x=("node", node)
		x=("processor", cpu)
		y=("avg(duration)", dura, avg)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("paper's example program:")
	fmt.Println(indent(tables[0].TSV()))

	// The pre-defined tables, led by the Figure 6 table.
	predefined, err := run.Stats("")
	if err != nil {
		log.Fatal(err)
	}
	for _, tb := range predefined {
		fmt.Printf("predefined table %q: %d rows\n", tb.Name, len(tb.Rows))
	}
	fig6 := predefined[0]
	if err := os.WriteFile("fig6.tsv", []byte(fig6.TSV()), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("fig6.svg", []byte(render.StatsHeatmapSVG(fig6)), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote fig6.tsv and fig6.svg (the statistics viewer's heatmap)")

	// The reading the paper makes from this table: which time ranges are
	// interesting (busy with non-Running states) and which are quiet.
	perBin := map[int]float64{}
	for _, r := range fig6.Rows {
		perBin[int(r.X[1].F)] += r.Y[0]
	}
	var quiet, busyBins int
	for b := 0; b < 50; b++ {
		if perBin[b] == 0 {
			quiet++
		} else {
			busyBins++
		}
	}
	fmt.Printf("bins with interesting activity: %d, quiet bins: %d\n", busyBins, quiet)
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ")
}
