// clocks reproduces the clock-synchronization story of the paper's §1.1
// and §2.2: the accumulated timestamp discrepancies of Figure 1, and the
// global-to-local ratio estimators (RMS of adjacent slope segments, the
// last-pair slope, piecewise segments) with the de-schedule outlier case
// the Summary discusses.
package main

import (
	"fmt"

	"tracefw/internal/clock"
)

func main() {
	// Figure 1: four local clocks with crystal drifts, sampled every
	// second for 140 seconds against clock 0.
	drifts := []float64{0, 2.5e-5, -3.5e-5, 6e-5}
	s := clock.Figure1(drifts, 0, 140*clock.Second, clock.Second, 1)
	fmt.Println("Figure 1 — accumulated discrepancies vs clock 0 (µs):")
	fmt.Println("elapsed_s   clock1      clock2      clock3")
	for k, t := range s.SampleAt {
		if k%20 != 0 {
			continue
		}
		fmt.Printf("%8.0f %10.1f %11.1f %11.1f\n", t.Seconds(),
			us(s.Disc[1][k]), us(s.Disc[2][k]), us(s.Disc[3][k]))
	}
	fmt.Printf("max divergence after 140s: %v\n\n", s.MaxDivergence())

	// §2.2: recover the drift of a clock from periodic (global, local)
	// pairs, with one pair polluted by a 5ms de-schedule between the two
	// reads.
	const drift = 8e-5
	c := clock.NewLocal(3*clock.Second, drift, 0, 1, 7)
	var pairs []clock.Pair
	for i := 0; i <= 140; i++ {
		g := clock.Time(i) * clock.Second
		p := clock.Pair{Global: g, Local: c.ValueAt(g)}
		if i == 70 {
			p.Global -= 5 * clock.Millisecond // stale global read
		}
		pairs = append(pairs, p)
	}
	samples := make([]clock.Time, 0, 139)
	for i := 1; i < 140; i++ {
		samples = append(samples, clock.Time(i)*clock.Second+clock.Second/2)
	}
	show := func(name string, a clock.Adjuster) {
		fmt.Printf("%-22s worst adjustment error: %8.1f µs\n",
			name, us(clock.MaxAbsError(a, c, samples)))
	}
	fmt.Printf("§2.2 — estimators on a %.0e drift with one de-schedule outlier:\n", drift)
	show("rms (paper's choice)", clock.NewRatioAdjuster(pairs))
	show("rms + outlier filter", clock.NewRatioAdjuster(clock.FilterOutliers(pairs, 1e-3)))
	show("last pair", clock.NewLastPairAdjuster(pairs))
	show("piecewise", clock.NewPiecewiseAdjuster(pairs))
	fp := clock.FirstPointRatio(pairs)
	show("first point (rejected)", &clock.RatioAdjuster{G0: pairs[0].Global, L0: pairs[0].Local, R: fp})
	fmt.Println("\nthe outlier filter restores the RMS estimator (paper §5's suggestion)")
}

func us(t clock.Time) float64 { return float64(t) / float64(clock.Microsecond) }
