// Quickstart: run a small MPI program on the simulated machine, push it
// through the whole pipeline (trace → convert → merge → SLOG), and then
// reproduce the paper's Figure 5 API example — computing the total bytes
// sent by walking the merged interval file with the profile-driven
// getItemByName accessor.
package main

import (
	"errors"
	"fmt"
	"io"
	"log"

	"tracefw/internal/core"
	"tracefw/internal/events"
	"tracefw/internal/profile"
	"tracefw/internal/workload"
)

func main() {
	run, err := core.Execute(core.Config{
		Nodes:        2,
		CPUsPerNode:  2,
		TasksPerNode: 2,
		Seed:         1,
	}, workload.Ring{Iters: 10, Bytes: 4096}.Main())
	if err != nil {
		log.Fatal(err)
	}
	defer run.Close()

	fmt.Printf("simulated %d tasks for %v; %d raw events -> %d merged records in %d frames\n",
		run.Config.Nodes*run.Config.TasksPerNode, run.VirtualEnd,
		run.TotalEvents(), run.MergeResult.Records, run.SlogResult.Frames)

	// The paper's Figure 5 program: read the header and profile, then sum
	// the msgSizeSent field over every interval record.
	table := profile.Standard().Select(run.Merged.Header.FieldMask)
	if table.Version != run.Merged.Header.ProfileVersion {
		log.Fatalf("profile version mismatch: %#x vs %#x",
			table.Version, run.Merged.Header.ProfileVersion)
	}
	var totalSize int64
	sc := run.Merged.Scan()
	for {
		buf, err := sc.Next() // the paper's getInterval
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		rec, err := intervalType(buf)
		if err != nil {
			log.Fatal(err)
		}
		spec := table.Lookup(rec.ty, rec.bb)
		if spec == nil {
			continue
		}
		if v, _, ok := spec.Item(buf, events.FieldMsgSizeSent); ok { // getItemByName
			totalSize += v
		}
	}
	fmt.Printf("total bytes sent = %d\n", totalSize)

	// Cross-check against the workload: 4 tasks × 10 iterations × 4096B.
	if want := int64(4 * 10 * 4096); totalSize != want {
		log.Fatalf("expected %d bytes", want)
	}
	fmt.Println("matches the workload's 4 tasks × 10 sends × 4096 bytes")
}

// intervalType peeks at the record's leading (type, bebits) fields.
type recHead struct {
	ty events.Type
	bb profile.Bebits
}

func intervalType(buf []byte) (recHead, error) {
	if len(buf) < 3 {
		return recHead{}, fmt.Errorf("short record")
	}
	return recHead{
		ty: events.Type(uint16(buf[0]) | uint16(buf[1])<<8),
		bb: profile.Bebits(buf[2]),
	}, nil
}
