package tracefw

// End-to-end integration tests over the file-based pipeline: raw trace
// files on disk → uteconvert-equivalent → utemerge-equivalent → SLOG →
// stats and views, with cross-format consistency checks. These cover the
// seams the per-package unit tests cannot: real files, the profile
// version check, and agreement between independently computed artifacts.

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/cluster"
	"tracefw/internal/convert"
	"tracefw/internal/core"
	"tracefw/internal/events"
	"tracefw/internal/interval"
	"tracefw/internal/merge"
	"tracefw/internal/mpisim"
	"tracefw/internal/profile"
	"tracefw/internal/render"
	"tracefw/internal/slog"
	"tracefw/internal/stats"
	"tracefw/internal/trace"
	"tracefw/internal/workload"
)

func TestFileBasedPipeline(t *testing.T) {
	dir := t.TempDir()

	// Stage 1: tracegen.
	cfg := mpisim.Config{
		Cluster: cluster.Config{
			Nodes:       2,
			CPUsPerNode: 2,
			Seed:        101,
			TraceOpts: trace.Options{
				Prefix:  filepath.Join(dir, "raw"),
				Enabled: events.MaskAll,
			},
		},
		TasksPerNode: 2,
	}
	w, err := mpisim.NewFiles(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Start(workload.Flash{Iters: 8, RefineEach: 4}.Main())
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}

	// Stage 2: uteconvert (+ profile file).
	rawPaths := []string{cfg.Cluster.TraceOpts.FileName(0), cfg.Cluster.TraceOpts.FileName(1)}
	outPaths := []string{filepath.Join(dir, "trace.0.ute"), filepath.Join(dir, "trace.1.ute")}
	if _, err := convert.ConvertAll(rawPaths, outPaths, convert.Options{}); err != nil {
		t.Fatal(err)
	}
	profPath := filepath.Join(dir, "profile.ute")
	if err := profile.Standard().WriteFile(profPath); err != nil {
		t.Fatal(err)
	}

	// Profile version check (paper §2.3): the file's stored version must
	// match the profile file's.
	f0, err := interval.Open(outPaths[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f0.Close()
	prof, err := profile.ReadFile(profPath, f0.Header.FieldMask)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Version != f0.Header.ProfileVersion {
		t.Fatalf("profile version mismatch: %#x vs %#x", prof.Version, f0.Header.ProfileVersion)
	}

	// Stage 3: utemerge -slog.
	mergedPath := filepath.Join(dir, "merged.ute")
	mres, err := merge.MergeFiles(outPaths, mergedPath, merge.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mres.Records == 0 {
		t.Fatal("empty merge")
	}
	slogPath := filepath.Join(dir, "trace.slog")
	mf, err := interval.Open(mergedPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	sfp, err := os.Create(slogPath)
	if err != nil {
		t.Fatal(err)
	}
	bres, err := slog.Build(mf, sfp, slog.Options{FrameBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := sfp.Close(); err != nil {
		t.Fatal(err)
	}

	// Cross-check 1: every record scanned from the merged file is
	// accounted for in the SLOG frames.
	sf, err := slog.Open(slogPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	var slogRecords int64
	for i := range sf.Index {
		fd, err := sf.ReadFrame(i)
		if err != nil {
			t.Fatal(err)
		}
		slogRecords += int64(len(fd.Intervals))
	}
	if slogRecords != bres.Records || slogRecords != mres.Records {
		t.Fatalf("record accounting: slog=%d build=%d merge=%d", slogRecords, bres.Records, mres.Records)
	}

	// Cross-check 2: the generic profile-driven reader agrees with the
	// typed decoder on every record of the merged file.
	sel := profile.Standard().Select(mf.Header.FieldMask)
	sc := mf.Scan()
	for {
		payload, err := sc.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rec, err := interval.DecodePayload(payload)
		if err != nil {
			t.Fatal(err)
		}
		spec := sel.Lookup(rec.Type, rec.Bebits)
		if spec == nil {
			t.Fatalf("no spec for %s/%s", rec.Type.Name(), rec.Bebits)
		}
		if sz, err := spec.Size(payload); err != nil || sz != len(payload) {
			t.Fatalf("spec size %d (%v) vs payload %d for %s", sz, err, len(payload), rec.Type.Name())
		}
	}

	// Cross-check 3: stats sum of msgSizeSent equals the per-record sum,
	// and the I/O extension's records made it through.
	tables, err := stats.Generate(`
		table name=bytes condition=(msgSizeSent > 0) y=("total", msgSizeSent, sum)
		table name=io condition=(state == "IO_Write") y=("bytes", ioBytes, sum) y=("calls", iscall, sum)
		table name=pm condition=(state == "PageMiss") y=("misses", 1, count)
	`, []*interval.File{mf})
	if err != nil {
		t.Fatal(err)
	}
	var wantBytes float64
	recs, err := mf.Scan().All()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if v, ok := r.Field(events.FieldMsgSizeSent); ok {
			wantBytes += float64(v)
		}
	}
	if got := tables[0].Rows[0].Y[0]; got != wantBytes {
		t.Fatalf("stats bytes %v, scan %v", got, wantBytes)
	}
	if len(tables[1].Rows) == 0 || tables[1].Rows[0].Y[1] != 1 {
		t.Fatalf("checkpoint write not visible: %+v", tables[1].Rows)
	}
	if len(tables[2].Rows) == 0 || tables[2].Rows[0].Y[0] == 0 {
		t.Fatalf("page misses not visible: %+v", tables[2].Rows)
	}

	// Cross-check 4: views build from the same file, and the preview's
	// totals match a per-state duration sum (within per-record rounding).
	for _, kind := range []render.ViewKind{render.ThreadActivity, render.ProcessorActivity} {
		d, err := render.BuildDiagram(mf, kind, render.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Rows) == 0 {
			t.Fatalf("%v view empty", kind)
		}
	}
	perState := map[events.Type]clock.Time{}
	for _, r := range recs {
		perState[r.Type] += r.Dura
	}
	for si, ty := range sf.Preview.States {
		var got clock.Time
		for _, dur := range sf.Preview.Dur[si] {
			got += dur
		}
		want := perState[ty]
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		if diff > clock.Time(len(recs)+sf.Bins) {
			t.Fatalf("preview total for %s: %v vs %v", ty.Name(), got, want)
		}
	}
}

func TestDelayedTracingReducesData(t *testing.T) {
	// Paper §2.1: "The user can also delay trace generation until a later
	// point to trace only a portion of the code."
	run := func(delay bool) int64 {
		dir := t.TempDir()
		cfg := core.Config{
			Nodes: 2, CPUsPerNode: 2, TasksPerNode: 1, Seed: 7,
			DelayStart: delay,
			OutDir:     dir,
		}
		w := workload.Ring{Iters: 20, Bytes: 512}
		if !delay {
			r, err := core.Execute(cfg, w.Main())
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			return r.TotalEvents()
		}
		// With DelayStart the facilities stay off; nothing but an empty
		// trace should come out (Start is never called in this scenario).
		mcfg := mpisim.Config{
			Cluster: cluster.Config{
				Nodes: 2, CPUsPerNode: 2, Seed: 7,
				TraceOpts: trace.Options{
					Prefix:     filepath.Join(dir, "raw"),
					Enabled:    events.MaskAll,
					DelayStart: true,
				},
			},
			TasksPerNode: 1,
		}
		world, err := mpisim.NewFiles(mcfg)
		if err != nil {
			t.Fatal(err)
		}
		world.Start(w.Main())
		if _, err := world.Run(); err != nil {
			t.Fatal(err)
		}
		var n int64
		for i := 0; i < 2; i++ {
			rd, err := trace.OpenFile(mcfg.Cluster.TraceOpts.FileName(i))
			if err != nil {
				t.Fatal(err)
			}
			recs, err := rd.ReadAll()
			rd.Close()
			if err != nil {
				t.Fatal(err)
			}
			n += int64(len(recs))
		}
		return n
	}
	full := run(false)
	delayed := run(true)
	if delayed != 0 {
		t.Fatalf("delayed tracing still produced %d records", delayed)
	}
	if full == 0 {
		t.Fatal("full tracing produced nothing")
	}
}

func TestEnableMaskReducesData(t *testing.T) {
	// Trace only MPI events: no dispatch records appear, and conversion
	// still succeeds (MPI intervals become unsplit Complete records since
	// no dispatch events interrupt them).
	dir := t.TempDir()
	mcfg := mpisim.Config{
		Cluster: cluster.Config{
			Nodes: 2, CPUsPerNode: 1, Seed: 3,
			TraceOpts: trace.Options{
				Prefix:  filepath.Join(dir, "raw"),
				Enabled: events.MaskMPI,
			},
		},
		TasksPerNode: 1,
	}
	world, err := mpisim.NewFiles(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	world.Start(workload.Ring{Iters: 5, Bytes: 128}.Main())
	if _, err := world.Run(); err != nil {
		t.Fatal(err)
	}
	rd, err := trace.OpenFile(mcfg.Cluster.TraceOpts.FileName(0))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := rd.ReadAll()
	rd.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Type == events.EvDispatch || r.Type == events.EvUndispatch {
			t.Fatalf("dispatch record leaked through MaskMPI: %+v", r)
		}
	}
}

func TestEmptyWorkloadPipeline(t *testing.T) {
	// A workload that does nothing still produces a structurally valid
	// pipeline: thread tables, clock records consumed, empty-ish merged
	// file, a preview with only Running time, and working views.
	run, err := core.Execute(core.Config{
		Nodes: 2, CPUsPerNode: 1, TasksPerNode: 1, Seed: 5,
	}, func(p *mpisim.Proc) {})
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	if _, err := run.Merged.Validate(profile.Standard()); err != nil {
		t.Fatal(err)
	}
	if len(run.Slog.Index) == 0 {
		t.Fatal("no slog frames for the empty run")
	}
	if _, err := run.View(render.ThreadActivity, render.Options{}); err != nil {
		t.Fatal(err)
	}
	tables, err := run.Stats("")
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatal("no tables")
	}
}
