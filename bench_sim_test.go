package tracefw

// Benchmarks for the discrete-event simulator itself: the cluster-scale
// scenario sweeps run thousand-node machines, so the scheduler's event
// queue, ready queues, and listener fan-out are a hot loop in their own
// right. BenchmarkSchedHotLoop pins the per-event cost and allocation
// behavior across node counts (allocs per event must stay flat as the
// machine grows); BenchmarkSweepCell runs one full sweep cell —
// generate → convert → merge → stats — at a small size. Numbers are
// recorded in BENCH_sim.json.

import (
	"fmt"
	"testing"

	"tracefw/internal/clock"
	"tracefw/internal/sched"
	"tracefw/internal/sweep"
	"tracefw/internal/workload"
)

// countingListener tallies scheduler events without retaining anything,
// standing in for the trace facility's listener fan-out.
type countingListener struct{ events int64 }

func (l *countingListener) OnDispatch(int, int32, int, clock.Time) { l.events++ }
func (l *countingListener) OnUndispatch(int, int32, int, sched.UndispatchReason, clock.Time) {
	l.events++
}
func (l *countingListener) OnThreadStart(int, int32, clock.Time) { l.events++ }

// runHotLoop drives one contended simulation: nodes × 4 CPUs with 8
// compute-bound threads per node, so every quantum expiry preempts and
// every dispatch decision sees a non-empty ready queue.
func runHotLoop(nodes, rounds int, l sched.Listener) {
	s := sched.New(sched.Config{
		Nodes:       nodes,
		CPUsPerNode: 4,
		Quantum:     clock.Millisecond,
	}, l)
	for n := 0; n < nodes; n++ {
		for t := 0; t < 8; t++ {
			t := t
			s.Spawn(n, func(th *sched.Thread) {
				for r := 0; r < rounds; r++ {
					th.Compute(clock.Time(1+t%3) * clock.Millisecond)
					th.Sleep(clock.Time(1+r%2) * clock.Millisecond)
				}
			})
		}
	}
	s.Run()
}

// BenchmarkSchedHotLoop measures the DES hot loop at growing node
// counts. The figure of merit is ns and allocs per scheduler event —
// both must stay flat as nodes grow, or thousand-node sweeps become
// quadratic in practice.
func BenchmarkSchedHotLoop(b *testing.B) {
	for _, nodes := range []int{4, 64, 512} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			rounds := 40
			b.ReportAllocs()
			b.ResetTimer()
			var events int64
			for i := 0; i < b.N; i++ {
				l := &countingListener{}
				runHotLoop(nodes, rounds, l)
				events += l.events
			}
			b.StopTimer()
			if events > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
				b.ReportMetric(float64(events)/float64(b.N), "events/op")
			}
		})
	}
}

// BenchmarkSweepCell runs one full sweep cell end to end: simulate,
// convert, merge, and reduce to the comparison-table metrics. This is
// the unit the utesweep driver fans out over a policy × workload grid.
func BenchmarkSweepCell(b *testing.B) {
	grid := sweep.Grid{
		Policies:  []string{"fifo"},
		Scenarios: []sweep.Scenario{{Name: "imbalance", Params: workload.Params{"iters": 4}}},
	}
	opts := sweep.Options{
		Nodes: 8, CPUsPerNode: 2, TasksPerNode: 1,
		Seed: 7, Parallel: 1,
	}
	b.ReportAllocs()
	var events int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sweep.Run(grid, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Cells) != 1 || res.Cells[0].RawEvents == 0 {
			b.Fatal("sweep cell produced no events")
		}
		events += res.Cells[0].RawEvents
	}
	b.StopTimer()
	if events > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/rawevent")
	}
}
